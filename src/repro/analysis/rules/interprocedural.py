"""RPR06x — cross-module determinism.

The file-scoped determinism rules (RPR01x) see one AST at a time: a
sampler that reaches ``time.time()`` *through a helper in another
module* passes them clean.  These rules close that hole with the
project call graph (:mod:`repro.analysis.dataflow`):

* **RPR061** — a public function in a sampling/merge package
  (``core/``, ``sampling/``, ``stream/``, ``warehouse/``)
  transitively reaches a nondeterministic effect.  The finding prints
  the full offending call chain, e.g.::

      `warehouse.ingest.ingest_partition` transitively reaches a
      wall-clock read via ingest_partition (src/.../ingest.py:40)
      -> _route (src/.../splitter.py:18) -> time.time() (line 24)

  Only *transitive* (cross-function) reaches are reported — a local
  ``time.time()`` in the entry point itself is already RPR011's
  finding, and duplicating it would force double suppressions.

* **RPR062** — a function that takes an RNG handle (an ``rng`` /
  ``*_rng`` parameter or a ``*Rng``-annotated one) and draws from it,
  but *also* draws from a second independent generator (an unguarded
  fresh ``*Rng(...)`` construction, or the process-global ``random``
  module).  Mixing generator paths breaks substream independence: the
  second source is not derived from the caller's seed, so the
  function's output is no longer a pure function of the handle it was
  given.  A guarded default (``if rng is None: rng =
  SplittableRng(seed)``) is the sanctioned idiom and is not flagged.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.dataflow import (EFFECT_LABELS, GLOBAL_RNG,
                                     NONDETERMINISTIC_EFFECTS,
                                     analyze_project)
from repro.analysis.framework import (Finding, Project, SourceFile,
                                      rule)

#: Packages whose public functions are sampling/merge entry points.
ENTRY_PACKAGES = ("core", "sampling", "stream", "warehouse")


@rule("RPR061", "cross-module-nondeterminism",
      "a sampling entry point transitively reaches a nondeterministic "
      "effect", scope="project")
def check_cross_module_determinism(project: Project
                                   ) -> Iterator[Finding]:
    """Walk every public sampling-package function's transitive
    effect set and report nondeterministic reaches with the chain."""
    graph = analyze_project(project)
    for key in sorted(graph.defs):
        mod, rec = graph.defs[key]
        if mod.split(".", 1)[0] not in ENTRY_PACKAGES:
            continue
        if not rec.get("public"):
            continue
        for effect in NONDETERMINISTIC_EFFECTS:
            witness = graph.effects[key].get(effect)
            if witness is None or witness[0] != "via":
                # Local effects are the file-scoped rules' findings.
                continue
            path, line, col = graph.location(key)
            yield Finding(
                path=path, line=line, col=col, code="RPR061",
                message=(
                    f"`{graph.display(key)}` transitively reaches "
                    f"{EFFECT_LABELS[effect]} via "
                    f"{graph.chain(key, effect)}; sampling results "
                    "must be a pure function of the seed "
                    "(docs/determinism.md)"))


@rule("RPR062", "mixed-rng-sources",
      "a function draws from its rng parameter and a second "
      "independent generator")
def check_mixed_rng_sources(sf: SourceFile) -> Iterator[Finding]:
    """Flag rng-parameterized functions that also draw from a fresh
    unguarded ``*Rng(...)`` or the global ``random`` module."""
    summ = sf.summary("callgraph")
    if not summ:
        return
    for qual in sorted(summ["functions"]):
        rec = summ["functions"][qual]
        if not rec["rng_params"] or not rec["rng_draws"]:
            continue
        param = rec["rng_params"][0]
        for fresh in rec["fresh_rng"]:
            if fresh["guarded"]:
                continue
            yield Finding(
                path=sf.display_path, line=fresh["line"],
                col=fresh["col"], code="RPR062",
                message=(
                    f"`{qual}` draws from its `{param}` handle but "
                    f"also constructs `{fresh['name']}(...)` — an "
                    "independent generator not derived from the "
                    "caller's seed; spawn a labelled substream "
                    "(rng.spawn) or derive a child seed instead"))
        for effect, detail, line in rec["effects"]:
            if effect != GLOBAL_RNG:
                continue
            yield Finding(
                path=sf.display_path, line=line, col=rec["col"],
                code="RPR062",
                message=(
                    f"`{qual}` draws from its `{param}` handle but "
                    f"also from the process-global generator "
                    f"(`{detail}`); mixed sources break substream "
                    "independence"))


__all__ = ["check_cross_module_determinism",
           "check_mixed_rng_sources", "ENTRY_PACKAGES"]

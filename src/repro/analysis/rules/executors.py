"""RPR07x — executor safety.

:class:`~repro.warehouse.parallel.ProcessExecutor` runs tasks in
worker *processes*: the callable is pickled, shipped, and executed in
a copy of the interpreter.  Two classes of bug follow, both invisible
to file-local rules because the submitted callable usually lives in
another module:

* **RPR071** — the submitted task (or anything it transitively
  calls) mutates module-global or outer-scope state.  The mutation
  happens in the worker's copy and is silently discarded when the
  worker exits; the parent never sees it.  The finding prints the
  call chain down to the offending write.

* **RPR072** — the submitted callable is a lambda or a local
  (nested) def.  Neither can be pickled, so the submission fails at
  runtime — but only on the process-executor path, which tests that
  default to ``SerialExecutor`` never exercise.

Both rules key off the ``submits`` records the callgraph summarizer
extracts: submissions via ``.map``/``.submit`` on a receiver that is
provably a process pool (a direct ``ProcessExecutor(...)`` /
``ProcessPoolExecutor(...)`` construction, or a local/module name
bound to one, including ``with ... as pool:``).  Thread and serial
executors share the parent's memory and accept any callable, so they
are exempt by construction.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.dataflow import SHARED_MUTATION, analyze_project
from repro.analysis.framework import Finding, Project, rule


@rule("RPR071", "process-task-shared-state",
      "a process-executor task mutates module-global or outer-scope "
      "state", scope="project")
def check_process_shared_state(project: Project) -> Iterator[Finding]:
    """Resolve each process-pool submission through the call graph
    and flag tasks whose transitive effects include shared mutation."""
    graph = analyze_project(project)
    for key in sorted(graph.defs):
        mod, rec = graph.defs[key]
        qual = key.split(":", 1)[1]
        for sub in rec.get("submits", ()):
            fn = sub["fn"]
            if sub.get("exec_kind", "process") != "process":
                continue  # thread pools share the parent's memory
            if fn["kind"] != "ref":
                continue
            target = graph.resolve(mod, qual, fn["name"])
            if target is None:
                continue
            if SHARED_MUTATION not in graph.effects[target]:
                continue
            yield Finding(
                path=graph.modules[mod]["path"], line=sub["line"],
                col=sub["col"], code="RPR071",
                message=(
                    f"task `{fn['name']}` submitted to a process "
                    "executor mutates shared state via "
                    f"{graph.chain(target, SHARED_MUTATION)}; writes "
                    "made in a worker process are silently lost — "
                    "return results to the parent instead"))


@rule("RPR072", "unpicklable-process-task",
      "a lambda or local def is submitted to a process executor",
      scope="project")
def check_unpicklable_task(project: Project) -> Iterator[Finding]:
    """Flag submissions of callables pickle cannot ship: lambdas and
    defs nested inside another function."""
    graph = analyze_project(project)
    for key in sorted(graph.defs):
        mod, rec = graph.defs[key]
        qual = key.split(":", 1)[1]
        for sub in rec.get("submits", ()):
            fn = sub["fn"]
            if sub.get("exec_kind", "process") != "process":
                continue  # thread pools pickle nothing
            path = graph.modules[mod]["path"]
            if fn["kind"] == "lambda":
                label = f"`{fn['name']}` (a lambda)" if fn["name"] \
                    else "a lambda"
                yield Finding(
                    path=path, line=sub["line"], col=sub["col"],
                    code="RPR072",
                    message=(
                        f"{label} is submitted to a process executor "
                        "but cannot be pickled; promote it to a "
                        "module-level function (see sample_partition)"))
                continue
            if fn["kind"] != "ref":
                continue
            target = graph.resolve(mod, qual, fn["name"])
            if target is None or ".<locals>." not in target:
                continue
            yield Finding(
                path=path, line=sub["line"], col=sub["col"],
                code="RPR072",
                message=(
                    f"`{fn['name']}` is a local def (nested inside "
                    f"`{target.split(':', 1)[1].split('.<locals>.')[0]}`"
                    "): pickle cannot ship it to a worker process; "
                    "promote it to module level"))


__all__ = ["check_process_shared_state", "check_unpicklable_task"]

"""RNG discipline: all randomness flows through ``repro.rng``.

The paper's uniformity guarantees (and Theorem 1's merge correctness)
require every random draw to come from a labelled ``SplittableRng``
substream or a ``derive_seed`` child seed.  A single call into the
stdlib's global ``random`` state — or any other entropy source —
breaks same-seed reproducibility and silently decouples a sampler
from the seed-splitting discipline.  ``rng.py`` itself is the one
module allowed to touch :mod:`random`: it *implements* the
discipline.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, SourceFile, rule
from repro.analysis.astutil import walk_calls
# Canonical tables shared with the interprocedural effect engine, so
# the RPR00x family and RPR061's taint tracking can never drift.
from repro.analysis.dataflow import ENTROPY_CALLS as _ENTROPY_CALLS
from repro.analysis.dataflow import \
    RANDOM_MODULE_FNS as _RANDOM_MODULE_FNS
from repro.analysis.dataflow import is_seeded_numpy_ctor

#: Wall-clock calls that make a seed expression time-dependent.
_CLOCK_CALLS = (
    "time.time", "time.time_ns", "time.monotonic", "time.perf_counter",
    "datetime.now", "datetime.utcnow", "datetime.datetime.now",
    "datetime.datetime.utcnow", "os.getpid",
)


@rule("RPR001", "rng-import",
      "the stdlib `random` module is imported outside rng.py")
def check_random_import(sf: SourceFile) -> Iterator[Finding]:
    """Ban ``import random`` / ``from random import ...`` off rng.py."""
    if sf.is_module("rng.py"):
        return
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or \
                        alias.name.startswith("random."):
                    yield sf.finding(
                        node, "RPR001",
                        "import of the stdlib `random` module outside "
                        "rng.py; use SplittableRng / derive_seed from "
                        "repro.rng")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random" and node.level == 0:
                yield sf.finding(
                    node, "RPR001",
                    "`from random import ...` outside rng.py; use "
                    "SplittableRng / derive_seed from repro.rng")


@rule("RPR002", "rng-module-state",
      "a generator or draw is taken from the global `random` module")
def check_module_random(sf: SourceFile) -> Iterator[Finding]:
    """Ban ``random.Random(...)`` / ``random.random()`` etc. off rng.py."""
    if sf.is_module("rng.py"):
        return
    for call, name in walk_calls(sf.tree):
        if name is None or not name.startswith("random."):
            continue
        attr = name[len("random."):]
        if attr in ("Random", "SystemRandom"):
            yield sf.finding(
                call, "RPR002",
                f"direct `{name}(...)` outside rng.py; spawn a labelled "
                "substream with SplittableRng.spawn instead")
        elif attr in _RANDOM_MODULE_FNS:
            yield sf.finding(
                call, "RPR002",
                f"module-level `{name}()` draws from the process-global "
                "generator; draw from a SplittableRng substream instead")


@rule("RPR003", "entropy-source",
      "randomness is taken from a non-derivable entropy source")
def check_entropy_sources(sf: SourceFile) -> Iterator[Finding]:
    """Ban ``os.urandom`` / ``secrets`` / ``uuid4`` / ``numpy.random``.

    One sanctioned exception: *seeded* construction of a numpy
    generator (``np.random.PCG64(seed)``, ``default_rng(seed)``, ...)
    is deterministic and is how the numpy kernel backend derives its
    vectorized streams from a ``SplittableRng``.  The zero-argument
    forms (OS entropy) and every module-level draw stay banned.
    """
    for call, name in walk_calls(sf.tree):
        if name in _ENTROPY_CALLS:
            yield sf.finding(
                call, "RPR003",
                f"`{name}()` is unseedable entropy; derive substream "
                "seeds with repro.rng.derive_seed")
        elif name is not None and (
                name.startswith("numpy.random.")
                or name.startswith("np.random.")):
            if is_seeded_numpy_ctor(name, call):
                continue
            yield sf.finding(
                call, "RPR003",
                f"`{name}()` bypasses the SplittableRng discipline; "
                "seed any numpy generator from derive_seed explicitly")


@rule("RPR004", "nondeterministic-seed",
      "a generator is unseeded or seeded from the clock")
def check_nondeterministic_seed(sf: SourceFile) -> Iterator[Finding]:
    """Flag ``Random()`` with no seed and any ``*Rng(time.time())``."""
    for call, name in walk_calls(sf.tree):
        if name is None:
            continue
        terminal = name.rsplit(".", 1)[-1]
        is_ctor = terminal in ("Random", "SystemRandom") or \
            terminal.endswith("Rng")
        if not is_ctor:
            continue
        if terminal in ("Random", "SystemRandom") and \
                not call.args and not call.keywords:
            yield sf.finding(
                call, "RPR004",
                f"`{name}()` without a seed falls back to system "
                "entropy; pass a derive_seed(...) child seed")
            continue
        for arg in [*call.args, *[kw.value for kw in call.keywords]]:
            for inner, inner_name in walk_calls(arg):
                if inner_name in _CLOCK_CALLS:
                    yield sf.finding(
                        call, "RPR004",
                        f"generator seeded from `{inner_name}()`; seeds "
                        "must be derived from the master seed "
                        "(derive_seed), never the clock")


def clock_call_names() -> tuple:
    """The dotted call names treated as clock reads (shared with
    the determinism family)."""
    return _CLOCK_CALLS


__all__ = ["check_random_import", "check_module_random",
           "check_entropy_sources", "check_nondeterministic_seed",
           "clock_call_names"]

"""Small AST helpers shared by the lint rules."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

__all__ = ["dotted_name", "call_name", "walk_calls", "contains_call"]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``.

    Call results and subscripts break the chain (``a().b`` -> None),
    which is what the rules want: they match *static* references.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> Optional[str]:
    """The dotted name a call invokes, e.g. ``random.Random``."""
    return dotted_name(call.func)


def walk_calls(tree: ast.AST) -> Iterator[Tuple[ast.Call, Optional[str]]]:
    """Yield ``(call, dotted_name)`` for every call in the tree."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node, call_name(node)


def contains_call(tree: ast.AST, names: Tuple[str, ...]) -> bool:
    """True when any call to one of the dotted ``names`` occurs inside."""
    for _, name in walk_calls(tree):
        if name is not None and name in names:
            return True
    return False

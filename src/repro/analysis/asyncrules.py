"""Async-soundness analysis and the RPR11x rule family.

:mod:`repro.analysis.callgraph` colors every ``async def`` in its
module summary (``async_kind``), records its ``await`` points with the
locks held at each suspension, and tags calls with the facts the
async rules need (``blocks``, ``awaited``, ``discarded``,
``creates_task``, ``arg_of``).  This module lifts those per-function
facts to the whole project:

* **Blocks-event-loop effect** (:attr:`AsyncModel.blocks`).  A sync
  function *blocks the event loop* when — called from a coroutine —
  it would park the loop thread: it sleeps, does file/socket I/O,
  acquires a ``threading.Lock``, waits on a queue, or calls another
  sync function that does.  Computed as a transitive fixpoint over
  the sync call graph, with one witness per function so findings can
  print the offending chain.  Three escapes keep executor-routed work
  out of the effect: ``.submit(...)`` calls are non-blocking enqueues
  (the routing primitive itself), calls inside a lambda argument are
  charged to a *router* (a function that hands its callable parameter
  to an executor, ``run_in_executor``, or ``to_thread``) rather than
  the caller, and edges into ``async def`` targets are dropped (a
  sync call to a coroutine function only creates the coroutine
  object).

* **Coroutine coloring** (:attr:`AsyncModel.colors` /
  :attr:`AsyncModel.awaits`) — the tables the CI async coverage gate
  diffs against an independent AST scan.

The rules (all project-scoped; test files are exempt — test
coroutines run under ``asyncio.run`` scaffolding, single-task):

* **RPR111 — blocking-call-in-coroutine** (severity ``warning``).
  A coroutine (or async generator) performs a blocking call — local
  or through sync callees — without routing it through an executor.
  Every task on the loop stalls behind it.

* **RPR112 — un-awaited coroutine / dropped task handle.**  An
  expression statement discards a coroutine object (the body never
  runs) or the task returned by ``asyncio.create_task`` (the task is
  a GC candidate mid-flight and its exception is silently lost).

* **RPR113 — await-point race.**  The async analogue of RPR101:
  shared state (``self._x`` / module globals) is written in a
  coroutine across an ``await`` with no common ``asyncio.Lock`` over
  the straddling accesses.  Another task interleaves at the
  suspension point and observes (or clobbers) intermediate state.
  Epochs are static: accesses are compared by the number of
  suspension points crossed before them, so a single-epoch function
  can never fire (loop back-edges are a documented non-goal).

* **RPR114 — await under a threading lock.**  Holding a
  ``threading.Lock`` across an ``await`` couples the two schedulers:
  any pool thread contending for the lock parks until the loop
  resumes this task, and if resuming *needs* that thread the pair
  deadlocks.  Release before awaiting, or use ``asyncio.Lock``.

Like the lockset model, everything here is pure summary-plumbing
(JSON in, tables out), so warm cache runs rebuild it byte-identically
from stored summaries.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.dataflow import CallGraph, analyze_project
from repro.analysis.framework import Finding, Project, rule
from repro.analysis.locksets import is_test_path, lock_model

__all__ = ["AsyncModel", "async_model",
           "check_blocking_in_coroutine", "check_dropped_awaitable",
           "check_await_point_race", "check_await_under_thread_lock"]

#: Terminal call names that hand their callable argument off the loop
#: — a lambda argument of one of these runs on a worker, not here.
_ROUTER_TERMINALS = frozenset({"run_in_executor", "to_thread",
                               "submit", "map"})

#: Blocking methods on class-level queue / executor attributes, as in
#: the lockset model — minus ``submit``, which is a non-blocking
#: enqueue (the routing primitive the whole analysis exempts).
_ATTR_QUEUE_BLOCKING = frozenset({"get", "put", "join"})
_ATTR_EXEC_BLOCKING = frozenset({"map", "shutdown"})


class AsyncModel:
    """Project-wide async tables (see the module docstring)."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        #: def key -> "coroutine" | "asyncgen"
        self.colors: Dict[str, str] = {}
        #: def key -> its await records (always present for colored
        #: keys, possibly empty — the coverage gate diffs counts)
        self.awaits: Dict[str, List[dict]] = {}
        #: (module, cls, attr) -> the class key the attribute's
        #: constructor resolves to ("serve.cache:MergeCache")
        self._attr_cls: Dict[Tuple[str, str, str], str] = {}
        #: (module, cls) -> {attr} bound to queues / executors
        self.queue_attrs: Dict[Tuple[str, str], Set[str]] = {}
        self.exec_attrs: Dict[Tuple[str, str], Set[str]] = {}
        #: def key -> callable-parameter names it routes to an executor
        self.routes: Dict[str, Set[str]] = {}
        self._collect()
        #: sync def key -> blocks-event-loop witness:
        #: ("local", detail, line) or ("via", callee key, detail, line)
        self.blocks: Dict[str, Tuple] = {}
        self._solve_blocks()

    # -- canonicalization ----------------------------------------------

    def _canon_token(self, key: str, token: str) -> Optional[str]:
        """Canonical id of a lock/location token spelled in ``key``
        (same scheme as the lockset model); None when a ``self.``
        token has no class to attach to (a nested def)."""
        mod, rec = self.graph.defs[key]
        first, _, rest = token.partition(".")
        if first == "self":
            cls = self._owner_class(key)
            if cls is None or not rest:
                return None
            return f"{mod}:{cls}.{rest}"
        return f"{mod}:{token}"

    def _canon_held(self, key: str, held) -> FrozenSet[str]:
        out = set()
        for tok in (held or ()):
            ident = self._canon_token(key, tok)
            if ident is not None:
                out.add(ident)
        return frozenset(out)

    def _owner_class(self, key: str) -> Optional[str]:
        """The class whose ``self`` a def's body sees — its own
        ``cls``, or the enclosing method's for a nested def."""
        mod, rec = self.graph.defs[key]
        if rec.get("cls"):
            return rec["cls"]
        qual = key.split(":", 1)[1]
        if ".<locals>." not in qual:
            return None
        outer = qual.split(".<locals>.", 1)[0]
        outer_rec = self.graph.defs.get(f"{mod}:{outer}")
        return outer_rec[1].get("cls") if outer_rec else None

    # -- construction ---------------------------------------------------

    def _collect(self) -> None:
        graph = self.graph
        for key in sorted(graph.defs):
            mod, rec = graph.defs[key]
            kind = rec.get("async_kind")
            if kind:
                self.colors[key] = kind
                self.awaits[key] = list(rec.get("awaits") or ())
            cls = rec.get("cls")
            if cls is not None:
                qual = key.split(":", 1)[1]
                for attr in sorted(rec.get("attr_binds") or {}):
                    ctor = rec["attr_binds"][attr]
                    target = graph.resolve(mod, qual, ctor)
                    if target is not None and \
                            target.endswith(".__init__"):
                        self._attr_cls.setdefault(
                            (mod, cls, attr),
                            target[:-len(".__init__")])
                for attr in sorted(rec.get("queue_attrs") or {}):
                    self.queue_attrs.setdefault((mod, cls),
                                                set()).add(attr)
                for attr in sorted(rec.get("exec_attrs") or {}):
                    self.exec_attrs.setdefault((mod, cls),
                                               set()).add(attr)
            for sub in rec.get("submits") or ():
                name = sub["fn"].get("name")
                if not name or "." in name:
                    continue
                # Charge the submit to the innermost enclosing def
                # that takes ``name`` as a parameter: that def routes
                # its callable argument off the loop.
                scope_key = key
                while scope_key is not None:
                    _, scope_rec = graph.defs[scope_key]
                    if name in (scope_rec.get("params") or ()):
                        self.routes.setdefault(scope_key,
                                               set()).add(name)
                        break
                    scope_qual = scope_key.split(":", 1)[1]
                    if ".<locals>." not in scope_qual:
                        break
                    outer = scope_qual.rsplit(".<locals>.", 1)[0]
                    scope_key = f"{mod}:{outer}"
                    if scope_key not in graph.defs:
                        scope_key = None

    def resolve(self, key: str, name: str) -> Optional[str]:
        """Async-aware call resolution: the base resolver, plus
        ``self.<m>`` from nested defs (via the enclosing method's
        class) and ``self.<attr>.<m>`` through constructor-bound
        attribute types."""
        mod, _ = self.graph.defs[key]
        qual = key.split(":", 1)[1]
        target = self.graph.resolve(mod, qual, name)
        if target is not None:
            return target
        parts = name.split(".")
        if parts[0] != "self":
            return None
        cls = self._owner_class(key)
        if cls is None:
            return None
        if len(parts) == 2:
            cand = f"{mod}:{cls}.{parts[1]}"
            return cand if cand in self.graph.defs else None
        if len(parts) == 3:
            cls_key = self._attr_cls.get((mod, cls, parts[1]))
            if cls_key is not None:
                cand = f"{cls_key}.{parts[2]}"
                return cand if cand in self.graph.defs else None
        return None

    def _is_routed(self, key: str, ctx_name: str) -> bool:
        """True when ``ctx_name`` (the call a lambda argument sits
        inside) runs its callables off the event loop."""
        if ctx_name.rsplit(".", 1)[-1] in _ROUTER_TERMINALS:
            return True
        target = self.resolve(key, ctx_name)
        return target is not None and bool(self.routes.get(target))

    def _local_blockers(self, key: str) -> List[Tuple[str, int]]:
        """This body's own loop-parking sites: ``(detail, line)``."""
        mod, rec = self.graph.defs[key]
        cls = self._owner_class(key)
        queue_attrs = self.queue_attrs.get((mod, cls), set()) \
            if cls else set()
        exec_attrs = self.exec_attrs.get((mod, cls), set()) \
            if cls else set()
        out: List[Tuple[str, int]] = []
        for acq in rec.get("acquires") or ():
            out.append((f"acquires `{acq['lock']}`", acq["line"]))
        for call in rec.get("calls") or ():
            name = call["name"]
            if call.get("arg_of") and \
                    self._is_routed(key, call["arg_of"]):
                continue
            if name.rsplit(".", 1)[-1] == "submit":
                continue  # non-blocking enqueue
            if call.get("blocks"):
                out.append((f"{name}()", call["line"]))
                continue
            parts = name.split(".")
            if len(parts) == 3 and parts[0] == "self":
                attr, method = parts[1], parts[2]
                if (attr in queue_attrs
                        and method in _ATTR_QUEUE_BLOCKING) or \
                        (attr in exec_attrs
                         and method in _ATTR_EXEC_BLOCKING):
                    out.append((f"{name}()", call["line"]))
        out.sort(key=lambda site: site[1])
        return out

    def _out_edges(self, key: str) -> List[Tuple[str, str, int]]:
        """Resolved sync-to-sync call edges that propagate the
        blocks-event-loop effect: ``(target, name, line)``."""
        _, rec = self.graph.defs[key]
        edges: List[Tuple[str, str, int]] = []
        for call in rec.get("calls") or ():
            name = call["name"]
            if call.get("arg_of") and \
                    self._is_routed(key, call["arg_of"]):
                continue
            if name.rsplit(".", 1)[-1] == "submit":
                continue
            target = self.resolve(key, name)
            if target is None or target == key:
                continue
            if target in self.colors:
                continue  # calling a coroutine fn only builds the coro
            edges.append((target, name, call["line"]))
        return edges

    def _solve_blocks(self) -> None:
        sync_keys = sorted(k for k in self.graph.defs
                           if k not in self.colors)
        for key in sync_keys:
            local = self._local_blockers(key)
            if local:
                detail, line = local[0]
                self.blocks[key] = ("local", detail, line)
        changed = True
        while changed:
            changed = False
            for key in sync_keys:
                if key in self.blocks:
                    continue
                for target, name, line in self._out_edges(key):
                    if target in self.blocks:
                        self.blocks[key] = ("via", target,
                                            f"{name}()", line)
                        changed = True
                        break

    # -- views consumed by the rules ------------------------------------

    def chain(self, key: str) -> str:
        """The blocks-event-loop witness chain of a *sync* def,
        rendered like the dataflow effect chains."""
        hops: List[str] = []
        seen: Set[str] = set()
        current: Optional[str] = key
        while current is not None and current not in seen:
            seen.add(current)
            witness = self.blocks.get(current)
            if witness is None:
                break
            path, line, _ = self.graph.location(current)
            name = current.split(":", 1)[1].replace(".<locals>.", ".")
            hops.append(f"{name} ({path}:{line})")
            if witness[0] == "local":
                hops.append(f"{witness[1]} (line {witness[2]})")
                break
            current = witness[1]
        return " -> ".join(hops)

    def loop_sites(self, key: str) -> List[dict]:
        """Every way ``key``'s own body can park the event loop:
        local sites plus calls into blocks-event-loop sync callees.
        ``{"line", "detail", "chain"}`` sorted by line."""
        sites = [{"line": line, "detail": detail, "chain": None}
                 for detail, line in self._local_blockers(key)]
        for target, name, line in self._out_edges(key):
            if target in self.blocks:
                sites.append({"line": line, "detail": f"{name}()",
                              "chain": self.chain(target)})
        sites.sort(key=lambda s: (s["line"], s["detail"]))
        return sites

    def aio_blocking_evidence(self, key: str) -> List[dict]:
        """Blocking waits performed while an ``asyncio.Lock`` is held
        — RPR103's async evidence, sharing the blocks-event-loop
        effect.  ``{"line", "detail", "locks", "chain"}``."""
        _, rec = self.graph.defs[key]
        evidence: List[dict] = []
        for blk in rec.get("aio_blocking") or ():
            locks = self._canon_held(key, blk["aio_held"])
            if locks:
                evidence.append({"line": blk["line"],
                                 "detail": blk["detail"],
                                 "locks": locks, "chain": None})
        for call in rec.get("calls") or ():
            locks = self._canon_held(key, call.get("aio_held"))
            if not locks:
                continue
            name = call["name"]
            if call.get("arg_of") and \
                    self._is_routed(key, call["arg_of"]):
                continue
            if name.rsplit(".", 1)[-1] == "submit":
                continue
            target = self.resolve(key, name)
            if target is None or target == key or \
                    target not in self.blocks:
                continue
            evidence.append({"line": call["line"],
                             "detail": f"{name}()", "locks": locks,
                             "chain": self.chain(target)})
        evidence.sort(key=lambda e: e["line"])
        return evidence

    def display(self, ident: str) -> str:
        """Human spelling of a canonical lock/location id."""
        return ident.partition(":")[2] or ident


def async_model(project) -> AsyncModel:
    """The (memoized) :class:`AsyncModel` of a lint project."""
    model = getattr(project, "_repro_asyncmodel", None)
    if model is None:
        model = AsyncModel(analyze_project(project))
        project._repro_asyncmodel = model
    return model


def _path_of(graph: CallGraph, key: str) -> str:
    return graph.modules[graph.defs[key][0]]["path"]


@rule("RPR111", "blocking-call-in-coroutine",
      "a coroutine performs a blocking call (sleep, lock acquire, "
      "file/socket I/O, queue wait) that stalls the event loop",
      scope="project", severity="warning")
def check_blocking_in_coroutine(project: Project) -> Iterator[Finding]:
    """One finding per coroutine that can park the loop thread,
    anchored at the first blocking site; executor-routed calls are
    exempt."""
    model = async_model(project)
    graph = model.graph
    for key in sorted(model.colors):
        path = _path_of(graph, key)
        if is_test_path(path):
            continue
        sites = model.loop_sites(key)
        if not sites:
            continue
        first = sites[0]
        chain = f" via {first['chain']}" if first["chain"] else ""
        lines = sorted({s["line"] for s in sites})
        extra = "" if len(lines) == 1 else \
            f" ({len(lines)} blocking sites in this coroutine)"
        noun = "async generator" \
            if model.colors[key] == "asyncgen" else "coroutine"
        yield Finding(
            path=path, line=first["line"], col=0, code="RPR111",
            message=(
                f"{noun} `{graph.display(key)}` blocks the event "
                f"loop: `{first['detail']}`{chain} parks the loop "
                f"thread{extra}, stalling every task until it "
                "returns — route it through the worker pool "
                "(executor submit / run_in_executor / to_thread), "
                "or annotate why the stall is acceptable"))


@rule("RPR112", "dropped-awaitable",
      "a coroutine object or created task is discarded un-awaited",
      scope="project")
def check_dropped_awaitable(project: Project) -> Iterator[Finding]:
    """Expression statements that drop a coroutine object (never
    runs) or a freshly created task's handle (leaks)."""
    model = async_model(project)
    graph = model.graph
    for key in sorted(graph.defs):
        path = _path_of(graph, key)
        if is_test_path(path):
            continue
        _, rec = graph.defs[key]
        for call in rec.get("calls") or ():
            if not call.get("discarded"):
                continue
            name = call["name"]
            if call.get("creates_task"):
                yield Finding(
                    path=path, line=call["line"], col=call["col"],
                    code="RPR112",
                    message=(
                        f"`{graph.display(key)}` drops the task "
                        f"handle returned by `{name}(...)`; a "
                        "fire-and-forget task can be garbage-"
                        "collected mid-flight and its exception is "
                        "silently lost — keep the reference and "
                        "await or cancel it"))
                continue
            target = model.resolve(key, name)
            if target is not None and \
                    model.colors.get(target) == "coroutine":
                yield Finding(
                    path=path, line=call["line"], col=call["col"],
                    code="RPR112",
                    message=(
                        f"`{graph.display(key)}` calls coroutine "
                        f"function `{name}(...)` without awaiting "
                        "it; the coroutine object is discarded and "
                        "its body never runs — await it, or wrap it "
                        "in asyncio.create_task and keep the handle"))


@rule("RPR113", "await-point-race",
      "shared state is mutated across an await point without an "
      "asyncio.Lock", scope="project")
def check_await_point_race(project: Project) -> Iterator[Finding]:
    """Per coroutine and shared location: accesses in two or more
    await-separated epochs, at least one a write, with no common
    asyncio lock held over all of them."""
    model = async_model(project)
    graph = model.graph
    for key in sorted(model.colors):
        path = _path_of(graph, key)
        if is_test_path(path):
            continue
        _, rec = graph.defs[key]
        groups: Dict[str, List[dict]] = {}
        for acc in rec.get("accesses") or ():
            ident = model._canon_token(key, acc["target"])
            if ident is None:
                continue
            groups.setdefault(ident, []).append(acc)
        for ident in sorted(groups):
            accs = groups[ident]
            epochs = {acc.get("epoch", 0) for acc in accs}
            if len(epochs) < 2:
                continue
            if not any(acc["kind"] == "write" for acc in accs):
                continue
            common = None
            for acc in accs:
                locks = model._canon_held(key, acc.get("aio_held"))
                common = locks if common is None else (common & locks)
            if common:
                continue  # one asyncio lock spans every access
            first_epoch = min(epochs)
            later = sorted((acc for acc in accs
                            if acc.get("epoch", 0) != first_epoch),
                           key=lambda acc: (acc["line"], acc["col"]))
            anchor = later[0]
            yield Finding(
                path=path, line=anchor["line"], col=anchor["col"],
                code="RPR113",
                message=(
                    f"`{model.display(ident)}` is accessed in "
                    f"{len(epochs)} await-separated sections of "
                    f"coroutine `{graph.display(key)}` (one a "
                    "write) with no asyncio.Lock spanning them; "
                    "another task can interleave at the await and "
                    "see or clobber intermediate state — hold one "
                    "asyncio.Lock across the section, or confine "
                    "the state to a single epoch"))


@rule("RPR114", "await-under-thread-lock",
      "a coroutine awaits while holding a threading lock",
      scope="project")
def check_await_under_thread_lock(project: Project
                                  ) -> Iterator[Finding]:
    """One finding per coroutine whose awaits suspend with a
    ``threading.Lock`` held (locally or caller-guaranteed)."""
    model = async_model(project)
    graph = model.graph
    lm = lock_model(project)
    for key in sorted(model.colors):
        path = _path_of(graph, key)
        if is_test_path(path):
            continue
        entry = lm.entry_must.get(key, frozenset())
        offending = []
        for aw in model.awaits.get(key, ()):
            held = model._canon_held(key, aw.get("held")) | entry
            if held:
                offending.append((aw, held))
        if not offending:
            continue
        first, held = offending[0]
        locks = ", ".join(f"`{model.display(lock)}`"
                          for lock in sorted(held))
        extra = "" if len(offending) == 1 else \
            f" ({len(offending)} such awaits in this coroutine)"
        yield Finding(
            path=path, line=first["line"], col=first["col"],
            code="RPR114",
            message=(
                f"coroutine `{graph.display(key)}` awaits while "
                f"holding {locks}{extra}; the lock stays held across "
                "the suspension, so any pool thread contending for "
                "it parks until this task resumes — and if resuming "
                "depends on that thread, both schedulers deadlock; "
                "release the lock before awaiting or use "
                "asyncio.Lock"))

"""Worklist taint/effect propagation over the project call graph.

:mod:`repro.analysis.callgraph` digests every file into a
JSON-serializable **module summary**: the functions it defines, the
calls they make, and the *local* effects each body exhibits.  This
module assembles those summaries into a project-wide
:class:`CallGraph`, resolves call edges (imports of ``repro.*``
modules, ``self.``-method dispatch, nested defs, one level of
package re-export), and runs a monotone worklist until every
function's **transitive effect set** is a fixpoint.

The effect lattice is a flat powerset over seven tags:

========================  ==============================================
``wall-clock``            ``time.time()``, ``datetime.now()``, ... —
                          different every run
``salted-hash``           builtin ``hash()`` / ``id()`` — different
                          every *process*
``global-rng``            draws or state on the stdlib ``random``
                          module (``rng.py`` itself is exempt: it
                          implements the discipline)
``unseeded-entropy``      ``os.urandom``, ``secrets.*``, ``uuid1/4``,
                          ``numpy.random.*``
``filesystem``            ``open()``, ``os``/``shutil``/``tempfile``
                          file ops
``shared-mutation``       writes to ``global``/``nonlocal`` names or
                          module-level state — lost silently when the
                          writer runs in a ``ProcessExecutor`` worker
``blocking-wait``         ``time.sleep``, queue gets/puts, executor
                          ``map``/``submit``/``shutdown`` — calls that
                          park the calling thread (RPR103 flags them
                          under a held lock)
========================  ==============================================

Each function keeps one **witness** per effect — either the local
call that exhibits it or the call edge it arrived through — so a
finding can print the full offending chain
(``ingest -> _route -> time.time()``).  Witness assignment is
first-wins under a deterministic iteration order (sorted function
keys, call-site order), which keeps cold- and warm-cache runs
byte-identical.

Everything here is pure data-plumbing: the lint rules that interpret
the fixpoint live in ``rules/interprocedural.py`` (RPR06x) and
``rules/executors.py`` (RPR07x).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["WALL_CLOCK", "SALTED_HASH", "GLOBAL_RNG", "ENTROPY",
           "FILESYSTEM", "SHARED_MUTATION", "BLOCKING",
           "NONDETERMINISTIC_EFFECTS",
           "EFFECT_LABELS", "WALL_CLOCK_CALLS", "ENTROPY_CALLS",
           "RANDOM_MODULE_FNS", "NUMPY_SEEDED_CTORS",
           "is_seeded_numpy_ctor", "FILESYSTEM_CALLS", "BLOCKING_CALLS",
           "MUTATING_METHODS", "CallGraph", "analyze_project"]

# ----------------------------------------------------------------------
# The effect lattice
# ----------------------------------------------------------------------

WALL_CLOCK = "wall-clock"
SALTED_HASH = "salted-hash"
GLOBAL_RNG = "global-rng"
ENTROPY = "unseeded-entropy"
FILESYSTEM = "filesystem"
SHARED_MUTATION = "shared-mutation"
BLOCKING = "blocking-wait"

#: The effects that break same-seed reproducibility (RPR061 flags
#: these on sampling/merge entry points; ``filesystem`` and
#: ``shared-mutation`` are tracked for the executor-safety rules and
#: for tooling, not for determinism findings).
NONDETERMINISTIC_EFFECTS = (WALL_CLOCK, SALTED_HASH, GLOBAL_RNG,
                            ENTROPY)

#: Human phrasing used in finding messages.
EFFECT_LABELS = {
    WALL_CLOCK: "a wall-clock read",
    SALTED_HASH: "a per-process salted hash",
    GLOBAL_RNG: "the process-global random generator",
    ENTROPY: "an unseedable entropy source",
    FILESYSTEM: "filesystem access",
    SHARED_MUTATION: "mutation of shared module state",
    BLOCKING: "a blocking wait",
}

# ----------------------------------------------------------------------
# Canonical call-name tables (the file-scoped rule families import
# these, so the interprocedural engine and RPR01x/RPR00x never drift)
# ----------------------------------------------------------------------

#: Non-monotonic clock reads (``perf_counter``/``monotonic`` are fine:
#: the obs layer times with them and never feeds them into results).
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.localtime", "time.ctime",
    "time.gmtime", "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today", "date.today",
})

#: Entropy sources that bypass the seed-splitting discipline entirely.
ENTROPY_CALLS = frozenset({
    "os.urandom", "secrets.token_bytes", "secrets.token_hex",
    "secrets.token_urlsafe", "secrets.randbelow", "secrets.choice",
    "secrets.randbits", "uuid.uuid1", "uuid.uuid4",
})

#: Terminal names of numpy generator/bit-generator constructors that
#: are deterministic when given an explicit seed.  RPR003 and the
#: interprocedural effect engine both sanction a call like
#: ``np.random.PCG64(derive_seed(...))`` — construction *with at least
#: one argument* — while still flagging unseeded construction and every
#: module-level ``np.random.*`` draw (which consume global or OS
#: entropy).  Kept here so the rule and the taint engine cannot drift.
NUMPY_SEEDED_CTORS = frozenset({
    "default_rng", "Generator", "SeedSequence",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})


def is_seeded_numpy_ctor(name: str, call) -> bool:
    """True for a seeded ``numpy.random`` generator construction.

    ``name`` is the dotted call name (``numpy.random.*`` or
    ``np.random.*``); ``call`` is the ``ast.Call`` node.  Seeded means
    at least one positional or keyword argument — the zero-argument
    forms fall back to OS entropy and stay banned.
    """
    terminal = name.rsplit(".", 1)[-1]
    return terminal in NUMPY_SEEDED_CTORS and bool(
        getattr(call, "args", None) or getattr(call, "keywords", None))


#: Module-level draw/state functions of the stdlib ``random`` module.
RANDOM_MODULE_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "gauss", "normalvariate",
    "lognormvariate", "expovariate", "betavariate", "gammavariate",
    "paretovariate", "weibullvariate", "vonmisesvariate", "seed",
    "getrandbits", "randbytes", "getstate", "setstate",
})

#: Filesystem touchpoints (effect bookkeeping only; no rule bans them).
FILESYSTEM_CALLS = frozenset({
    "open", "gzip.open", "os.replace", "os.rename", "os.unlink",
    "os.remove", "os.makedirs", "os.mkdir", "os.listdir", "os.rmdir",
    "os.scandir", "shutil.rmtree", "shutil.copy", "shutil.copytree",
    "shutil.move", "tempfile.mkstemp", "tempfile.mkdtemp",
    "tempfile.NamedTemporaryFile", "tempfile.TemporaryDirectory",
})

#: Calls that block the calling thread outright (the lockset engine
#: also derives blocking waits from queue/executor receivers and the
#: filesystem table above — see :mod:`repro.analysis.callgraph`).
#: RPR103 flags any of them made while a lock is held.
BLOCKING_CALLS = frozenset({
    "time.sleep", "select.select", "signal.pause",
    "socket.create_connection", "socket.getaddrinfo",
    "socket.gethostbyname",
})

#: Method calls that mutate a container in place.
MUTATING_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "pop", "popleft",
    "popitem", "remove", "clear", "update", "add", "discard",
    "setdefault", "write", "writelines",
})


# ----------------------------------------------------------------------
# The call graph over module summaries
# ----------------------------------------------------------------------

#: Witness: ``["local", detail, line]`` — this body exhibits the
#: effect at ``line`` — or ``["via", callee_key, line]`` — the effect
#: arrives through the call at ``line``.
Witness = List[object]

_REEXPORT_DEPTH = 4


class CallGraph:
    """Project-wide function table + resolved call edges + effects.

    Built from the ``callgraph`` summaries of every file in a
    :class:`~repro.analysis.framework.Project` (cached or fresh — the
    summaries are identical either way).  Function keys look like
    ``"warehouse/parallel.py::SampleTask.__post_init__"`` rendered
    from ``module:qualname`` pairs; use :meth:`location` and
    :meth:`chain` to turn keys back into human-readable findings.
    """

    def __init__(self, summaries: Sequence[dict]) -> None:
        #: module id ("core.sample") -> module summary
        self.modules: Dict[str, dict] = {}
        for summ in summaries:
            self.modules.setdefault(summ["module"], summ)
        #: "module:qual" -> (module id, function record)
        self.defs: Dict[str, Tuple[str, dict]] = {}
        for mod in sorted(self.modules):
            for qual, rec in self.modules[mod]["functions"].items():
                self.defs[f"{mod}:{qual}"] = (mod, rec)
        self._edges: Dict[str, List[Tuple[str, int]]] = {}
        for key in sorted(self.defs):
            self._edges[key] = self._resolve_edges(key)
        self.effects: Dict[str, Dict[str, Witness]] = {}
        self._propagate()

    # -- construction ---------------------------------------------------

    def _resolve_edges(self, key: str) -> List[Tuple[str, int]]:
        mod, rec = self.defs[key]
        qual = key.split(":", 1)[1]
        edges: List[Tuple[str, int]] = []
        for call in rec.get("calls", ()):
            target = self.resolve(mod, qual, call["name"])
            if target is not None and target != key:
                edges.append((target, call["line"]))
        return edges

    def _def_or_init(self, mod: str, symbol: str) -> Optional[str]:
        """``module:symbol`` as a function, or its ``__init__`` when
        ``symbol`` names a class."""
        key = f"{mod}:{symbol}"
        if key in self.defs:
            return key
        init = f"{mod}:{symbol}.__init__"
        if init in self.defs:
            return init
        return None

    def _resolve_target(self, target: str,
                        depth: int = 0) -> Optional[str]:
        """A dotted import target ("core.sample.merge") to a def key,
        following one package-``__init__`` re-export per hop."""
        if depth > _REEXPORT_DEPTH:
            return None
        parts = target.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            if mod not in self.modules:
                continue
            symbol = ".".join(parts[cut:])
            resolved = self._def_or_init(mod, symbol)
            if resolved is not None:
                return resolved
            # Re-export: ``from repro.core import merge`` where
            # ``merge`` is itself imported into core/__init__.py.
            head = parts[cut]
            reexport = self.modules[mod].get("imports", {}).get(head)
            if reexport is not None:
                tail = target[len(mod) + 1 + len(head):]
                return self._resolve_target(reexport + tail, depth + 1)
            return None
        return None

    def resolve(self, mod: str, caller_qual: str,
                name: str) -> Optional[str]:
        """Resolve a call-site name inside ``mod:caller_qual``."""
        summ = self.modules.get(mod)
        if summ is None:
            return None
        functions = summ["functions"]
        imports = summ.get("imports", {})
        if name.startswith("self."):
            attr = name[len("self."):]
            cls = functions.get(caller_qual, {}).get("cls")
            if cls is not None and "." not in attr:
                key = f"{mod}:{cls}.{attr}"
                if key in self.defs:
                    return key
            return None
        if "." not in name:
            # Innermost-out: a def nested in the caller, then a
            # module-level def/class, then an imported symbol.
            scope = caller_qual
            while scope:
                key = f"{mod}:{scope}.<locals>.{name}"
                if key in self.defs:
                    return key
                scope = scope.rsplit(".<locals>.", 1)[0] \
                    if ".<locals>." in scope else ""
            local = self._def_or_init(mod, name)
            if local is not None:
                return local
            target = imports.get(name)
            if target is not None:
                return self._resolve_target(target)
            return None
        # Dotted: longest imported prefix wins ("wh.catalog.register"
        # where "wh" or "wh.catalog" is an imported repro module).
        parts = name.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            target = imports.get(prefix)
            if target is not None:
                rest = ".".join(parts[cut:])
                return self._resolve_target(f"{target}.{rest}")
        return None

    def _propagate(self) -> None:
        """Monotone worklist to the transitive-effect fixpoint."""
        for key in sorted(self.defs):
            _, rec = self.defs[key]
            local: Dict[str, Witness] = {}
            for effect, detail, line in rec.get("effects", ()):
                local.setdefault(effect, ["local", detail, line])
            self.effects[key] = local
        ordered = sorted(self.defs)
        changed = True
        while changed:
            changed = False
            for key in ordered:
                mine = self.effects[key]
                for target, line in self._edges[key]:
                    for effect in self.effects[target]:
                        if effect not in mine:
                            mine[effect] = ["via", target, line]
                            changed = True

    # -- rendering ------------------------------------------------------

    def location(self, key: str) -> Tuple[str, int, int]:
        """``(path, line, col)`` of a function's def statement."""
        mod, rec = self.defs[key]
        return (self.modules[mod]["path"], rec["line"], rec["col"])

    def display(self, key: str) -> str:
        """Human name for a function key: ``module.qualname``."""
        mod, _ = self.defs[key]
        qual = key.split(":", 1)[1].replace(".<locals>.", ".")
        return f"{mod}.{qual}" if mod else qual

    def chain(self, key: str, effect: str) -> str:
        """The witness call chain, rendered for a finding message:
        ``ingest (warehouse/ingest.py:42) -> _route (stream/splitter.py:18)
        -> time.time() (line 24)``."""
        hops: List[str] = []
        seen = set()
        current: Optional[str] = key
        while current is not None and current not in seen:
            seen.add(current)
            witness = self.effects[current].get(effect)
            if witness is None:
                break
            path, line, _ = self.location(current)
            if current == key:
                name = self.display(current)
            else:
                name = current.split(":", 1)[1] \
                    .replace(".<locals>.", ".")
            hops.append(f"{name} ({path}:{line})")
            if witness[0] == "local":
                hops.append(f"{witness[1]} (line {witness[2]})")
                break
            current = witness[1]  # type: ignore[assignment]
        return " -> ".join(hops)


def analyze_project(project) -> CallGraph:
    """The (memoized) :class:`CallGraph` of a lint project.

    RPR061 and RPR071 both need the same fixpoint; computing it once
    per :class:`~repro.analysis.framework.Project` keeps the warm-run
    cost at one pass over the merged summaries.
    """
    graph = getattr(project, "_repro_callgraph", None)
    if graph is None:
        summaries = [summ for _, summ in project.summaries("callgraph")]
        graph = CallGraph(summaries)
        project._repro_callgraph = graph
    return graph

"""repro.analysis — an AST-based invariant checker (``repro lint``).

The library's correctness arguments rest on conventions no type
checker sees: every random draw flows through the seed-splitting
discipline of :mod:`repro.rng`, nothing on a sampling path reads a
clock or a salted hash, instrument names match the contract page in
``docs/observability.md``, errors derive from ``ReproError``, and
obs shared state mutates only under its lock.  This package turns
those conventions into machine-checked lint rules with stable
``RPR0xx`` codes.

Usage::

    from repro.analysis import run_lint, render_text

    findings, project = run_lint(["src/repro"])
    print(render_text(findings, checked_files=len(project.files)))

or from the shell: ``python -m repro lint src/repro``.  Per-line
suppression: ``# repro: noqa[RPR012]``.  The rule catalog lives in
``docs/static_analysis.md``; the repo lints itself as a tier-1 test
(``tests/test_self_lint.py``).

Beyond the file-local rules, the package carries an interprocedural
layer: :mod:`repro.analysis.callgraph` digests each file into a
module summary, :mod:`repro.analysis.dataflow` assembles the
project-wide call graph and propagates effect taints to a fixpoint
(powering the RPR06x/RPR07x families),
:mod:`repro.analysis.locksets` lifts per-function lock facts to
project-wide entry locksets and an acquired-while-holding order
graph (powering RPR041 and the RPR10x concurrency family),
:mod:`repro.analysis.asyncrules` colors coroutines and solves the
transitive blocks-event-loop effect (powering the RPR11x async
family), and
:mod:`repro.analysis.cache` keeps warm runs incremental — unchanged
files are never re-parsed, yet findings stay byte-identical to a
cold run.
"""

from repro.analysis.asyncrules import AsyncModel, async_model
from repro.analysis.cache import DEFAULT_CACHE_PATH, LintCache
from repro.analysis.dataflow import CallGraph, analyze_project
from repro.analysis.framework import (CachedFile, Finding, Project, Rule,
                                      SourceFile, all_rules,
                                      expand_select, finding_from_dict,
                                      load_project, rule, rule_for,
                                      run_lint, severity_for, summarizer)
from repro.analysis.locksets import LockModel, lock_model
from repro.analysis.reporters import (parse_json, render_json,
                                      render_sarif, render_text)

__all__ = [
    "AsyncModel",
    "CachedFile",
    "CallGraph",
    "DEFAULT_CACHE_PATH",
    "Finding",
    "LintCache",
    "LockModel",
    "Project",
    "Rule",
    "SourceFile",
    "all_rules",
    "analyze_project",
    "async_model",
    "expand_select",
    "finding_from_dict",
    "load_project",
    "lock_model",
    "parse_json",
    "render_json",
    "render_sarif",
    "render_text",
    "rule",
    "rule_for",
    "run_lint",
    "severity_for",
    "summarizer",
]

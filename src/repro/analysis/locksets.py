"""Interprocedural lockset analysis over the project call graph.

:mod:`repro.analysis.callgraph` records, per function, which locks
are acquired (``with self._lock:``, ``.acquire()``/``.release()``),
which shared locations are written or iterated, and which calls block
— each fact tagged with the locks *locally* held at that point.  This
module lifts those per-function facts to the whole project
(Eraser-style static lockset analysis, Savage et al.):

* **Canonical lock and location ids.**  ``self._lock`` inside
  ``obs.metrics:MetricsRegistry.inc`` and inside
  ``MetricsRegistry._get`` are the same lock:
  ``obs.metrics:MetricsRegistry._lock``.  Module-global locks
  canonicalize as ``module:_NAME``; shared locations use the same
  scheme (``obs.metrics:MetricsRegistry._metrics``,
  ``kernels:_ACTIVE_NAME``).

* **Entry locksets** (:attr:`LockModel.entry_must`).  The locks a
  function provably holds *at entry*, whichever call path reached it:
  the intersection over all call sites of (locks held at the site ∪
  the caller's own entry lockset).  Roots — public functions,
  functions with no in-edges, and anything submitted to an executor
  or ``Thread(target=...)`` — hold nothing at entry.  Computed as a
  decreasing fixpoint from the all-locks top element, so recursion
  converges.  This is what lets a private helper called only from
  already-locked callers pass RPR041 without a redundant local lock.

* **Constructor-only reachability** (:attr:`LockModel.ctor_only`).
  Methods reachable *only* from ``__init__``/``__post_init__``/
  ``__new__`` operate on a virgin instance no other thread can see
  yet; their ``self.*`` accesses are exempt from lock discipline.

* **The acquired-while-holding graph** (:attr:`LockModel.order_edges`)
  — one edge per ``(held, acquired)`` pair, with witnesses.  Cycles
  are RPR102's lock-order inversions; a non-reentrant self-edge is a
  guaranteed self-deadlock.

* **Access and blocking tables** — every shared-location access with
  its *effective* lockset (local ∪ entry), and every blocking wait
  made while holding a lock, feeding RPR101/RPR103.

The model is pure summary-plumbing (JSON in, tables out): it never
touches an AST, so warm cache runs rebuild it from stored summaries
and stay byte-identical to cold runs.  The rules that interpret it
live in ``rules/concurrency.py`` (RPR10x) and ``rules/locks.py``
(RPR041).
"""

from __future__ import annotations

from pathlib import PurePath
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.analysis.dataflow import BLOCKING, FILESYSTEM, CallGraph, \
    analyze_project

__all__ = ["LockModel", "lock_model", "is_test_path", "CTOR_NAMES"]


def is_test_path(path: str) -> bool:
    """Path-string version of ``SourceFile.is_test_module`` for the
    project-scoped concurrency rules (which may only have a display
    path in hand): ``test_*.py`` / ``*_test.py`` files and anything
    under a ``tests`` directory."""
    parts = PurePath(path).parts
    if not parts:
        return False
    stem = parts[-1]
    return (stem.startswith("test_") or stem.endswith("_test.py")
            or "tests" in parts[:-1])

#: Methods that run before the instance is shared: accesses inside
#: them (or inside helpers reachable only from them) see virgin state.
CTOR_NAMES = frozenset({"__init__", "__post_init__", "__new__"})

#: Blocking methods on class-level queue / executor attributes
#: (``self._q.get()`` where ``__init__`` bound ``self._q = Queue()``).
#: Mirrors the receiver tables in :mod:`repro.analysis.callgraph`.
_ATTR_QUEUE_BLOCKING = frozenset({"get", "put", "join"})
_ATTR_EXEC_BLOCKING = frozenset({"map", "submit", "shutdown"})


def _short(ident: str) -> str:
    """Human spelling of a canonical id: drop the module prefix."""
    return ident.partition(":")[2] or ident


class LockModel:
    """Project-wide lockset tables (see the module docstring)."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        #: canonical lock id -> "lock" | "rlock" | "unknown"
        self.lock_kinds: Dict[str, str] = {}
        #: (module, cls) -> sorted class-owned lock ids
        self.class_locks: Dict[Tuple[str, str], List[str]] = {}
        #: (module, cls) -> {attr: "queue"} / {attr: exec kind}
        self.queue_attrs: Dict[Tuple[str, str], Set[str]] = {}
        self.exec_attrs: Dict[Tuple[str, str], Set[str]] = {}
        #: module -> sorted module-level lock ids
        self.module_locks: Dict[str, List[str]] = {}
        #: def key -> canonicalized acquire/access/blocking records
        self._acquires: Dict[str, List[dict]] = {}
        self._accesses: Dict[str, List[dict]] = {}
        self._blocking: Dict[str, List[dict]] = {}
        #: def key -> [(caller key, held-at-site, line)]
        self.callers: Dict[str, List[Tuple[str, FrozenSet[str], int]]] \
            = {key: [] for key in graph.defs}
        #: def keys handed to an executor / Thread (any kind)
        self.submitted: Set[str] = set()
        self._collect()
        #: def key -> locks provably held at every entry
        self.entry_must: Dict[str, FrozenSet[str]] = {}
        #: def key -> one (caller, line) witnessing the entry lockset
        self.entry_witness: Dict[str, Tuple[str, int]] = {}
        self._solve_entry()
        #: def keys reachable only from constructors
        self.ctor_only: Set[str] = set()
        self._solve_ctor_only()
        #: location id -> access records with effective locksets
        self.access_table: Dict[str, List[dict]] = {}
        self._build_access_table()
        #: (held lock, acquired lock) -> [(def key, line, col)]
        self.order_edges: Dict[Tuple[str, str], List[Tuple[str, int,
                                                           int]]] = {}
        self._build_order_edges()

    # -- canonicalization ----------------------------------------------

    def _canon_token(self, key: str, token: str) -> str:
        """Canonical id of a lock/location token spelled in ``key``."""
        mod, rec = self.graph.defs[key]
        first, _, rest = token.partition(".")
        if first == "self":
            cls = rec.get("cls")
            if cls is None or not rest:
                return f"{mod}:{token}"
            return f"{mod}:{cls}.{rest}"
        return f"{mod}:{token}"

    def _canon_held(self, key: str, held) -> FrozenSet[str]:
        return frozenset(self._canon_token(key, tok)
                         for tok in (held or ()))

    # -- construction ---------------------------------------------------

    def _collect(self) -> None:
        graph = self.graph
        for mod in sorted(graph.modules):
            summ = graph.modules[mod]
            locks = summ.get("module_locks") or {}
            ids = []
            for name in sorted(locks):
                ident = f"{mod}:{name}"
                self.lock_kinds[ident] = locks[name][0]
                ids.append(ident)
            if ids:
                self.module_locks[mod] = ids
        for key in sorted(graph.defs):
            mod, rec = graph.defs[key]
            qual = key.split(":", 1)[1]
            cls = rec.get("cls")
            if cls is not None:
                for attr in sorted(rec.get("lock_attrs") or {}):
                    kind = rec["lock_attrs"][attr][0]
                    ident = f"{mod}:{cls}.{attr}"
                    self.lock_kinds[ident] = kind
                    owned = self.class_locks.setdefault((mod, cls), [])
                    if ident not in owned:
                        owned.append(ident)
                for attr in sorted(rec.get("queue_attrs") or {}):
                    self.queue_attrs.setdefault((mod, cls),
                                                set()).add(attr)
                for attr in sorted(rec.get("exec_attrs") or {}):
                    self.exec_attrs.setdefault((mod, cls),
                                               set()).add(attr)
            for acq in rec.get("acquires") or ():
                ident = self._canon_token(key, acq["lock"])
                self.lock_kinds.setdefault(ident, "unknown")
                self._acquires.setdefault(key, []).append(
                    {"lock": ident,
                     "held": self._canon_held(key, acq["held"]),
                     "line": acq["line"], "col": acq["col"]})
            for acc in rec.get("accesses") or ():
                target = acc["target"]
                if target.startswith("self.") and cls is None:
                    continue  # nested def: no class to attribute to
                self._accesses.setdefault(key, []).append(
                    {"target": self._canon_token(key, target),
                     "kind": acc["kind"],
                     "held": self._canon_held(key, acc["held"]),
                     "line": acc["line"], "col": acc["col"]})
            for blk in rec.get("blocking") or ():
                self._blocking.setdefault(key, []).append(
                    {"detail": blk["detail"],
                     "held": self._canon_held(key, blk["held"]),
                     "line": blk["line"]})
            # Call edges out of test files are excluded: a test
            # driving a private helper directly is single-threaded
            # scaffolding and must not dissolve the caller-holds-the-
            # lock guarantee the library's own call sites establish.
            if not is_test_path(self.graph.modules[mod]["path"]):
                for call in rec.get("calls") or ():
                    target = graph.resolve(mod, qual, call["name"])
                    if target is not None and target != key:
                        self.callers[target].append(
                            (key,
                             self._canon_held(key, call.get("held")),
                             call["line"]))
            for sub in rec.get("submits") or ():
                fn = sub["fn"]
                if fn.get("name"):
                    target = graph.resolve(mod, qual, fn["name"])
                    if target is not None:
                        self.submitted.add(target)
        for owned in self.class_locks.values():
            owned.sort()

    def _solve_entry(self) -> None:
        graph = self.graph
        universe = frozenset(self.lock_kinds)
        empty: FrozenSet[str] = frozenset()
        roots = {key for key in graph.defs
                 if graph.defs[key][1].get("public")
                 or not self.callers[key]
                 or key in self.submitted}
        entry = {key: (empty if key in roots else universe)
                 for key in graph.defs}
        ordered = sorted(graph.defs)
        changed = True
        while changed:
            changed = False
            for key in ordered:
                if key in roots:
                    continue
                new = None
                for caller, held, _ in self.callers[key]:
                    at_site = entry[caller] | held
                    new = at_site if new is None else (new & at_site)
                new = empty if new is None else new
                if new != entry[key]:
                    entry[key] = new
                    changed = True
        self.entry_must = entry
        for key in ordered:
            if not entry[key]:
                continue
            sites = sorted(self.callers[key],
                           key=lambda site: (site[0], site[2]))
            if sites:
                caller, _, line = sites[0]
                self.entry_witness[key] = (caller, line)

    def _solve_ctor_only(self) -> None:
        graph = self.graph

        def is_ctor(key: str) -> bool:
            return graph.defs[key][1]["name"] in CTOR_NAMES

        candidates = {key for key in graph.defs
                      if not graph.defs[key][1].get("public")
                      and key not in self.submitted
                      and self.callers[key]}
        changed = True
        while changed:
            changed = False
            for key in sorted(candidates):
                ok = all(is_ctor(caller) or caller in candidates
                         for caller, _, _ in self.callers[key])
                if not ok:
                    candidates.discard(key)
                    changed = True
        self.ctor_only = candidates

    def in_ctor_context(self, key: str) -> bool:
        """True when ``key`` only ever runs on a not-yet-shared
        instance (a constructor, or reachable only from one)."""
        return self.graph.defs[key][1]["name"] in CTOR_NAMES \
            or key in self.ctor_only

    def effective_held(self, key: str, held: FrozenSet[str]
                       ) -> FrozenSet[str]:
        """Locally held locks plus the caller-guaranteed entry set."""
        return held | self.entry_must.get(key, frozenset())

    def _build_access_table(self) -> None:
        for key in sorted(self._accesses):
            mod, rec = self.graph.defs[key]
            path = self.graph.modules[mod]["path"]
            ctor = self.in_ctor_context(key)
            for acc in self._accesses[key]:
                target = acc["target"]
                is_class_loc = "." in _short(target)
                self.access_table.setdefault(target, []).append(
                    {"key": key, "path": path, "kind": acc["kind"],
                     "line": acc["line"], "col": acc["col"],
                     "locks": self.effective_held(key, acc["held"]),
                     "exempt": ctor and is_class_loc})

    def _build_order_edges(self) -> None:
        for key in sorted(self._acquires):
            for acq in self._acquires[key]:
                held = self.effective_held(key, acq["held"])
                for prior in sorted(held):
                    self.order_edges.setdefault(
                        (prior, acq["lock"]), []).append(
                            (key, acq["line"], acq["col"]))

    # -- views consumed by the rules ------------------------------------

    def owner_locks(self, location: str) -> List[str]:
        """The locks that could plausibly guard ``location`` (its
        class's lock attributes, or its module's module-level locks)."""
        mod = location.partition(":")[0]
        short = _short(location)
        if "." in short:
            cls = short.rsplit(".", 1)[0]
            return self.class_locks.get((mod, cls), [])
        return self.module_locks.get(mod, [])

    def lock_table(self) -> Dict[str, str]:
        """Every lock the model knows about -> its kind.  The CI
        coverage gate diffs this against an independent AST scan."""
        return dict(sorted(self.lock_kinds.items()))

    def blocking_evidence(self, key: str) -> List[dict]:
        """Blocking waits ``key`` performs while holding a lock:
        local records, held calls into blocking/filesystem callees,
        and blocking methods on class queue/executor attributes."""
        graph = self.graph
        mod, rec = graph.defs[key]
        qual = key.split(":", 1)[1]
        cls = rec.get("cls")
        evidence: List[dict] = []
        for blk in self._blocking.get(key, ()):
            locks = self.effective_held(key, blk["held"])
            if locks:
                evidence.append({"line": blk["line"],
                                 "detail": blk["detail"],
                                 "locks": locks, "chain": None})
        queue_attrs = self.queue_attrs.get((mod, cls), set()) \
            if cls else set()
        exec_attrs = self.exec_attrs.get((mod, cls), set()) \
            if cls else set()
        for call in rec.get("calls") or ():
            locks = self.effective_held(
                key, self._canon_held(key, call.get("held")))
            if not locks:
                continue
            name = call["name"]
            parts = name.split(".")
            if len(parts) == 3 and parts[0] == "self":
                attr, method = parts[1], parts[2]
                if (attr in queue_attrs
                        and method in _ATTR_QUEUE_BLOCKING) or \
                        (attr in exec_attrs
                         and method in _ATTR_EXEC_BLOCKING):
                    evidence.append({"line": call["line"],
                                     "detail": f"{name}()",
                                     "locks": locks, "chain": None})
                    continue
            target = graph.resolve(mod, qual, name)
            if target is None or target == key:
                continue
            effects = graph.effects.get(target, {})
            effect = BLOCKING if BLOCKING in effects else (
                FILESYSTEM if FILESYSTEM in effects else None)
            if effect is None:
                continue
            evidence.append({"line": call["line"],
                             "detail": f"{name}()", "locks": locks,
                             "chain": graph.chain(target, effect)})
        evidence.sort(key=lambda e: e["line"])
        return evidence

    def display(self, ident: str) -> str:
        """Human spelling of a canonical lock/location id."""
        return _short(ident)


def lock_model(project) -> LockModel:
    """The (memoized) :class:`LockModel` of a lint project."""
    model = getattr(project, "_repro_lockmodel", None)
    if model is None:
        model = LockModel(analyze_project(project))
        project._repro_lockmodel = model
    return model

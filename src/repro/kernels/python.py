"""The pure-Python kernel backend — the reference implementation.

Every function here is the historical inner loop of the corresponding
merge/purge procedure, moved verbatim so the fallback stays
byte-identical with the pre-kernel code paths: same draw order, same
rng consumption, same results for the same seed.  This module is the
one kernel backend *allowed* to draw from a Python RNG element by
element (lint rule RPR091 bans that in every other backend module —
vectorized backends must make one generator call per kernel op).

:class:`FenwickTree` lives here (re-exported by ``repro.core.purge``
for compatibility) because victim selection inside :func:`srs_counts`
is the only consumer of its prefix-sum search.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.rng import SplittableRng
from repro.sampling.distributions import (CachedHypergeometric,
                                          sample_hypergeometric)
from repro.sampling.distributions import \
    hypergeometric_pmf as _reference_pmf
from repro.sampling.skip import SkipGenerator

__all__ = ["FenwickTree", "hypergeometric_pmf", "draw_hypergeometric",
           "draw_hypergeometric_batch", "binomial_counts", "srs_counts"]


class FenwickTree:
    """Binary-indexed tree over non-negative integer counts.

    Supports point updates and *prefix-sum search* (find the first index
    whose cumulative count reaches a target) in O(log n) — exactly the
    operation Figure 4's victim-selection step needs (its line 9 computes
    the same thing by linear scan).
    """

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ConfigurationError(f"size must be >= 0, got {size}")
        self._size = size
        self._tree = [0] * (size + 1)
        self._total = 0

    @property
    def total(self) -> int:
        """Sum of all counts."""
        return self._total

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` to the count at ``index`` (0-based)."""
        if not 0 <= index < self._size:
            raise ConfigurationError(
                f"index {index} out of range [0, {self._size})")
        self._total += delta
        i = index + 1
        while i <= self._size:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of counts at positions ``0..index`` inclusive."""
        total = 0
        i = min(index + 1, self._size)
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total

    def find_by_rank(self, rank: int) -> int:
        """Smallest index whose prefix sum is >= ``rank`` (1-based rank).

        This selects the ``rank``-th data element when counts are run
        lengths: if counts are ``[3, 0, 2]`` then ranks 1..3 map to index
        0 and ranks 4..5 to index 2.
        """
        if not 1 <= rank <= self._total:
            raise ConfigurationError(
                f"rank {rank} out of range [1, {self._total}]")
        index = 0
        remaining = rank
        bit = 1
        while bit * 2 <= self._size:
            bit *= 2
        while bit:
            nxt = index + bit
            if nxt <= self._size and self._tree[nxt] < remaining:
                index = nxt
                remaining -= self._tree[nxt]
            bit //= 2
        return index  # 0-based position

    def counts(self) -> List[int]:
        """Materialize the per-index counts (O(n log n); for finalization)."""
        out = []
        prev = 0
        for i in range(self._size):
            cur = self.prefix_sum(i)
            out.append(cur - prev)
            prev = cur
        return out


def hypergeometric_pmf(n1: int, n2: int, k: int) -> List[float]:
    """Eq. (3) recursion, scalar form (delegates to the reference)."""
    return _reference_pmf(n1, n2, k)


def draw_hypergeometric(n1: int, n2: int, k: int, rng: SplittableRng, *,
                        cache: Optional[CachedHypergeometric] = None,
                        method: str = "inversion") -> int:
    """One eq. (2) draw, honoring the historical cache/method knobs."""
    if cache is not None:
        return cache.sample(n1, n2, k, rng)
    return sample_hypergeometric(n1, n2, k, rng, method=method)


def draw_hypergeometric_batch(n1: int, n2: int, k: int,
                              rng: SplittableRng, count: int, *,
                              cache: Optional[CachedHypergeometric] = None,
                              method: str = "inversion") -> List[int]:
    """``count`` sequential eq. (2) draws."""
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    return [draw_hypergeometric(n1, n2, k, rng, cache=cache, method=method)
            for _ in range(count)]


def binomial_counts(counts: Sequence[int], q: float,
                    rng: SplittableRng) -> List[int]:
    """One ``Binomial(n, q)`` per run, in order (Figure 3's loop)."""
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"rate must be in [0, 1], got {q}")
    return [rng.binomial(n, q) for n in counts]


def srs_counts(runs: Sequence[int], size: int,
               rng: SplittableRng) -> List[int]:
    """Figure 4's core loop over run lengths.

    Skip-based reservoir sampling over the implicit concatenation of
    runs; victim selection among included elements uses a Fenwick tree
    so each eviction costs O(log #runs).  Verbatim port of the
    historical ``purge_reservoir`` inner loop — draw order unchanged.
    """
    total = sum(runs)
    if not 0 <= size <= total:
        raise ConfigurationError(
            f"size must be in [0, {total}], got {size}")
    if size == 0:
        return [0] * len(runs)
    if size == total:
        return list(runs)
    tree = FenwickTree(len(runs))
    skips = SkipGenerator(size, rng)

    included = 0          # L in Figure 4
    boundary = 0          # b: upper element index of the current bucket
    processed = 0         # elements of the implicit stream processed
    next_insert = 1       # j: 1-based index of the next element to include
    for position, run in enumerate(runs):
        boundary += run
        while next_insert <= boundary:
            if included == size:
                victim_rank = rng.randrange(size) + 1
                victim = tree.find_by_rank(victim_rank)
                tree.add(victim, -1)
                included -= 1
            tree.add(position, 1)
            included += 1
            processed = next_insert
            next_insert = processed + skips.next_skip(processed)
    return tree.counts()

"""Vectorized sampling/merge kernels with a pure-Python fallback.

The inner loops of the merge procedures — the eq. (3) hypergeometric
pmf, the ``L`` draw of Figure 8, the Binomial purge of Figure 3, and the
simple-random-subsample purge of Figure 4 — are the hot path of every
merge tree.  This package isolates them behind a small kernel API with
two interchangeable backends:

* ``"python"`` — the reference implementation, byte-identical to the
  historical pure-Python code paths (:mod:`repro.kernels.python`);
* ``"numpy"`` — the same draws as single vectorized generator calls
  (:mod:`repro.kernels.numpy_backend`), available when numpy is
  installed (the ``perf`` extra in ``pyproject.toml``).

Backend selection happens at import from the ``REPRO_KERNEL_BACKEND``
environment variable (``auto``, the default, picks numpy when it is
importable and falls back to pure Python otherwise).  Selection is
process-wide: :func:`set_backend` keeps the environment variable in
sync so worker processes spawned afterwards resolve the same backend.

Determinism contract (docs/determinism.md): within one backend, every
kernel draw is a pure function of its arguments and the consumed
``SplittableRng`` stream, so merge results stay byte-identical across
evaluation modes, executors, and worker counts.  The two backends
consume the rng differently and therefore produce *different but
equally lawful* samples; cross-backend agreement is statistical, gated
by the ``kernels.*`` checks of ``repro verify`` (docs/testing.md).

Examples
--------
>>> from repro.kernels import active_backend, available_backends
>>> active_backend() in available_backends()
True
>>> from repro.kernels import use_backend, hypergeometric_pmf
>>> with use_backend("python"):
...     [round(p, 4) for p in hypergeometric_pmf(2, 2, 2)]
[0.1667, 0.6667, 0.1667]
"""

from __future__ import annotations

import importlib
import importlib.util
import os
import threading
from contextlib import contextmanager
from types import ModuleType
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "KERNEL_BACKEND_ENV",
    "available_backends",
    "numpy_available",
    "active_backend",
    "set_backend",
    "use_backend",
    "hypergeometric_pmf",
    "draw_hypergeometric",
    "draw_hypergeometric_batch",
    "binomial_counts",
    "srs_counts",
]

#: Environment variable that selects the kernel backend at import time
#: (``auto`` | ``numpy`` | ``python``); inherited by worker processes.
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

_BACKEND_MODULES = {
    "python": "repro.kernels.python",
    "numpy": "repro.kernels.numpy_backend",
}

_LOCK = threading.Lock()
_ACTIVE_NAME = ""
_ACTIVE_MODULE: Optional[ModuleType] = None


def numpy_available() -> bool:
    """True when the numpy backend could be selected in this process."""
    return importlib.util.find_spec("numpy") is not None


def available_backends() -> Tuple[str, ...]:
    """The selectable backend names, fastest first."""
    if numpy_available():
        return ("numpy", "python")
    return ("python",)


def _resolve(name: str) -> str:
    """Map a requested name (including ``auto``) to a concrete backend."""
    if name == "auto":
        return "numpy" if numpy_available() else "python"
    if name not in _BACKEND_MODULES:
        raise ConfigurationError(
            f"unknown kernel backend {name!r}; expected 'auto', "
            f"'numpy', or 'python'")
    if name == "numpy" and not numpy_available():
        raise ConfigurationError(
            "kernel backend 'numpy' requested but numpy is not "
            "installed; install the 'perf' extra or use "
            "REPRO_KERNEL_BACKEND=python")
    return name


def active_backend() -> str:
    """The name of the backend kernel calls currently dispatch to."""
    return _ACTIVE_NAME


def set_backend(name: str) -> str:
    """Select the kernel backend process-wide; returns the concrete name.

    ``name`` may be ``auto``.  The choice is mirrored into
    ``REPRO_KERNEL_BACKEND`` so process-pool workers spawned after this
    call resolve the same backend.  Backend switches are global state:
    do not call concurrently with running merges (tests use
    :func:`use_backend` around single-threaded sections).
    """
    global _ACTIVE_NAME, _ACTIVE_MODULE
    concrete = _resolve(name)
    module = importlib.import_module(_BACKEND_MODULES[concrete])
    with _LOCK:
        _ACTIVE_NAME = concrete
        _ACTIVE_MODULE = module
        os.environ[KERNEL_BACKEND_ENV] = concrete
    return concrete


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Context manager: select ``name``, restore the previous backend."""
    previous = _ACTIVE_NAME
    concrete = set_backend(name)
    try:
        yield concrete
    finally:
        set_backend(previous)


def _backend() -> ModuleType:
    module = _ACTIVE_MODULE
    assert module is not None, "kernel backend not initialized"
    return module


# ----------------------------------------------------------------------
# The kernel API (dispatches to the active backend)
# ----------------------------------------------------------------------
def hypergeometric_pmf(n1: int, n2: int, k: int) -> List[float]:
    """The eq. (2) probability vector ``P(0..k)`` via eq. (3).

    Both backends seed the multiplicative recursion at the distribution
    mode (an lgamma evaluation) and walk outward; the numpy backend
    evaluates each directed walk as one ``cumprod``.  Backends agree to
    floating-point tolerance, not bit-for-bit.
    """
    return _backend().hypergeometric_pmf(n1, n2, k)


def draw_hypergeometric(n1: int, n2: int, k: int, rng, *,
                        cache=None, method: str = "inversion") -> int:
    """Draw ``L`` with the law of eq. (2) — Figure 8's ``genProb``.

    ``cache`` (a :class:`~repro.sampling.distributions.\
CachedHypergeometric`) and ``method`` (``"inversion"`` | ``"alias"``)
    steer the python backend exactly as the historical merge code did.
    The numpy backend inverts a cached cumulative pmf with one
    ``searchsorted`` and ignores both knobs — its per-``(n1, n2, k)``
    cdf cache plays the alias-table role, and cache state never affects
    draw values on either backend.
    """
    return _backend().draw_hypergeometric(n1, n2, k, rng,
                                          cache=cache, method=method)


def draw_hypergeometric_batch(n1: int, n2: int, k: int, rng,
                              count: int, *, cache=None,
                              method: str = "inversion") -> List[int]:
    """``count`` i.i.d. eq. (2) draws — one vectorized call on numpy."""
    return _backend().draw_hypergeometric_batch(
        n1, n2, k, rng, count, cache=cache, method=method)


def binomial_counts(counts: Sequence[int], q: float, rng) -> List[int]:
    """Figure 3's inner loop: ``Binomial(n, q)`` for every run length.

    Returns one kept-count per input run, in order.  The numpy backend
    draws the whole vector with a single generator call.
    """
    return _backend().binomial_counts(counts, q, rng)


def srs_counts(runs: Sequence[int], size: int, rng) -> List[int]:
    """Figure 4's inner loop: an SRS of ``size`` elements over runs.

    Takes a simple random subsample of ``size`` elements from the bag
    in which value ``i`` occurs ``runs[i]`` times, returning how many
    of each run survive.  Requires ``0 <= size <= sum(runs)``.  The
    python backend runs the paper's skip-based reservoir loop with
    Fenwick-tree victim selection; the numpy backend draws the whole
    vector from the multivariate hypergeometric law in one call.
    """
    return _backend().srs_counts(runs, size, rng)


# Backend selection happens at import so every later kernel call is a
# plain dispatch; REPRO_KERNEL_BACKEND=python forces the fallback even
# when numpy is installed (the CI matrix exercises exactly that).
set_backend(os.environ.get(KERNEL_BACKEND_ENV, "auto"))

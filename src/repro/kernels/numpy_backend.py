"""The numpy kernel backend — each kernel op is one vectorized call.

Draw semantics match the python backend's laws exactly (same pmfs, same
support); only the *stream consumption* differs, which is why
determinism is a per-backend contract (docs/determinism.md):

* the eq. (3) recursion runs as one ``cumprod`` per directed walk from
  the mode, and draws invert a cached cumulative pmf with
  ``searchsorted`` (the cdf cache is this backend's analogue of the
  Section 4.2 alias-table cache and reports through the same
  ``merge.hyper_cache.hit`` / ``merge.hyper_cache.miss`` counters);
* Figure 3's per-run Binomials are a single ``Generator.binomial`` call
  over the run-length vector;
* Figure 4's simple random subsample over runs is a single
  ``Generator.multivariate_hypergeometric`` draw — the distribution of
  surviving counts per run under an SRS is exactly that law.

Each :class:`~repro.rng.SplittableRng` lazily owns one
``numpy.random.Generator`` seeded from its own stream
(``rng.getrandbits(64)``), so kernel draws remain a pure function of
the rng's state and the call sequence — byte-identical across
executors and worker counts, like every other consumer of the
seed-splitting discipline.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.runtime import OBS
from repro.rng import SplittableRng
from repro.sampling.distributions import hypergeometric_logpmf_term

__all__ = ["hypergeometric_pmf", "draw_hypergeometric",
           "draw_hypergeometric_batch", "binomial_counts", "srs_counts"]

#: Attribute under which a SplittableRng carries its numpy generator.
_GEN_ATTR = "_repro_numpy_generator"


def _generator(rng: SplittableRng) -> "np.random.Generator":
    """The rng's lazily-created numpy generator (seeded from its stream).

    Seeding consumes 64 bits of the Python stream once per rng, so the
    generator — and every vectorized draw after it — is a deterministic
    function of the rng's seed and prior consumption.
    """
    gen = getattr(rng, _GEN_ATTR, None)
    if gen is None:
        gen = np.random.Generator(np.random.PCG64(rng.getrandbits(64)))
        setattr(rng, _GEN_ATTR, gen)
    return gen


def _validate(n1: int, n2: int, k: int) -> None:
    if n1 < 0 or n2 < 0:
        raise ConfigurationError(
            f"population sizes must be >= 0, got {n1}, {n2}")
    if not 0 <= k <= n1 + n2:
        raise ConfigurationError(
            f"draw size k={k} must be in [0, {n1 + n2}]")


def _pmf_array(n1: int, n2: int, k: int) -> "np.ndarray":
    """Eq. (3) as two cumulative products walking outward from the mode."""
    _validate(n1, n2, k)
    lo = max(0, k - n2)
    hi = min(k, n1)
    mode = min(hi, max(lo, (k + 1) * (n1 + 1) // (n1 + n2 + 2)))
    pmf = np.zeros(k + 1)
    pmf[mode] = math.exp(hypergeometric_logpmf_term(n1, n2, k, mode))
    if hi > mode:
        # P(l+1)/P(l) = (k-l)(n1-l) / ((l+1)(n2-k+l+1)) for l = mode..hi-1
        ls = np.arange(mode, hi, dtype=np.float64)
        up = ((k - ls) * (n1 - ls)) / ((ls + 1.0) * (n2 - k + ls + 1.0))
        pmf[mode + 1:hi + 1] = pmf[mode] * np.cumprod(up)
    if mode > lo:
        # inverse ratio for l = mode..lo+1, walking downward
        ls = np.arange(mode, lo, -1, dtype=np.float64)
        down = (ls * (n2 - k + ls)) / ((k - ls + 1.0) * (n1 - ls + 1.0))
        pmf[lo:mode] = (pmf[mode] * np.cumprod(down))[::-1]
    total = float(pmf.sum())
    if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-12):
        pmf = pmf / total
    return pmf


def hypergeometric_pmf(n1: int, n2: int, k: int) -> List[float]:
    """The probability vector ``P(0..k)`` of eq. (2)."""
    return _pmf_array(n1, n2, k).tolist()


# Cumulative-pmf cache keyed by (n1, n2, k) — the same role (and the
# same hit/miss counters) as CachedHypergeometric's alias tables on the
# python backend.  Shared across threads: reads are lock-free, inserts
# go through setdefault under the lock, and a racing rebuild produces
# an identical array.  Cache state never affects draw values.
_CDF_CACHE: Dict[Tuple[int, int, int], "np.ndarray"] = {}
_CDF_LOCK = threading.Lock()


def _cdf(n1: int, n2: int, k: int) -> "np.ndarray":
    key = (n1, n2, k)
    cdf = _CDF_CACHE.get(key)
    if cdf is None:
        if OBS.enabled:
            OBS.registry.counter("merge.hyper_cache.miss").inc()
        built = np.cumsum(_pmf_array(n1, n2, k))
        with _CDF_LOCK:
            cdf = _CDF_CACHE.setdefault(key, built)
    elif OBS.enabled:
        OBS.registry.counter("merge.hyper_cache.hit").inc()
    return cdf


def draw_hypergeometric(n1: int, n2: int, k: int, rng: SplittableRng, *,
                        cache=None, method: str = "inversion") -> int:
    """One eq. (2) draw by cdf inversion (one ``searchsorted``).

    ``cache`` and ``method`` are python-backend knobs; this backend's
    module-level cdf cache subsumes both, so they are accepted and
    ignored.
    """
    del cache, method
    cdf = _cdf(n1, n2, k)
    u = _generator(rng).random()
    return int(min(np.searchsorted(cdf, u, side="left"), k))


def draw_hypergeometric_batch(n1: int, n2: int, k: int,
                              rng: SplittableRng, count: int, *,
                              cache=None,
                              method: str = "inversion") -> List[int]:
    """``count`` eq. (2) draws from one uniform vector."""
    del cache, method
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    if count == 0:
        return []
    cdf = _cdf(n1, n2, k)
    us = _generator(rng).random(count)
    draws = np.minimum(np.searchsorted(cdf, us, side="left"), k)
    return [int(x) for x in draws]


def binomial_counts(counts: Sequence[int], q: float,
                    rng: SplittableRng) -> List[int]:
    """All of Figure 3's Binomial draws as one vectorized call."""
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"rate must be in [0, 1], got {q}")
    arr = np.asarray(counts if isinstance(counts, (list, tuple))
                     else list(counts), dtype=np.int64)
    if arr.size == 0:
        return []
    if arr.min() < 0:
        raise ConfigurationError("run lengths must be >= 0")
    return _generator(rng).binomial(arr, q).tolist()


def srs_counts(runs: Sequence[int], size: int,
               rng: SplittableRng) -> List[int]:
    """Figure 4 as one multivariate hypergeometric draw.

    Drawing ``size`` elements uniformly without replacement from the
    concatenated runs leaves each run with counts distributed exactly
    as ``multivariate_hypergeometric(runs, size)`` — the same law the
    python backend's reservoir loop realizes one element at a time.
    """
    arr = np.asarray(runs if isinstance(runs, (list, tuple))
                     else list(runs), dtype=np.int64)
    total = int(arr.sum())
    if not 0 <= size <= total:
        raise ConfigurationError(
            f"size must be in [0, {total}], got {size}")
    if size == 0:
        return [0] * int(arr.size)
    if size == total:
        return arr.tolist()
    # "count" needs O(sum(runs)) scratch; "marginals" walks the runs.
    # The choice is a pure function of the inputs, keeping draws
    # deterministic for a given rng state.
    method = "count" if total <= 1_000_000 else "marginals"
    draw = _generator(rng).multivariate_hypergeometric(arr, size,
                                                       method=method)
    return draw.tolist()

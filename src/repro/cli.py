"""Command-line interface: ``python -m repro <command>``.

Operate a file-backed sample warehouse from the shell:

* ``ingest``  — sample a column of values (one per line, or a CSV column)
  into a warehouse directory;
* ``info``    — list datasets / partitions and their catalog metadata;
* ``query``   — approximate COUNT/SUM/AVG/quantile over a dataset;
* ``rollup``  — merge consecutive partitions into coarser units;
* ``bench``   — regenerate one of the paper's figures;
* ``demo``    — the Section 3.3 concise-sampling counter-example;
* ``obs``     — an instrumented ingest + merge: metrics snapshot and
  nested span trace (the observability demo; see
  ``docs/observability.md`` for the full instrumentation contract);
* ``lint``    — the AST-based invariant checker (RNG discipline,
  determinism, obs contract, error and lock discipline; see
  ``docs/static_analysis.md`` for the rule catalog);
* ``verify``  — the statistical acceptance battery (uniformity,
  goodness-of-fit, negative controls, executor/merge differentials
  under one multiple-testing correction; see ``docs/testing.md``);
* ``serve``   — the asyncio HTTP service front over a warehouse
  (ingest / query / merge-on-demand endpoints with admission control,
  circuit breaker, and a versioned merge cache; ``docs/serving.md``);
* ``loadtest`` — N concurrent simulated clients against a service,
  writing a schema-validated ``BENCH_serve.json``.

All commands are deterministic given ``--seed`` (for ``serve`` and
``loadtest``: the workload and all sampling decisions are; wall-clock
latencies of course are not).
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import List, Optional, Sequence

from repro.analytics.estimators import (estimate_avg, estimate_count,
                                        estimate_quantile, estimate_sum)
from repro.bench.report import format_table
from repro.errors import ConfigurationError, ReproError
from repro.rng import SplittableRng
from repro.warehouse.rollup import temporal_rollup
from repro.warehouse.warehouse import SampleWarehouse

__all__ = ["main", "build_parser"]


def _parse_value(text: str):
    """CSV/line values: int if possible, then float, else the string."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _read_values(path: str, column: Optional[str]) -> List[object]:
    """Read values from a file: one per line, or a named CSV column."""
    if path == "-":
        handle = sys.stdin
        close = False
    else:
        handle = open(path, "r", encoding="utf-8", newline="")
        close = True
    try:
        if column is None:
            return [_parse_value(line.strip())
                    for line in handle if line.strip()]
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or column not in reader.fieldnames:
            raise ReproError(
                f"column {column!r} not found; available: "
                f"{reader.fieldnames}")
        return [_parse_value(row[column]) for row in reader
                if row.get(column, "") != ""]
    finally:
        if close:
            handle.close()


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sample-data warehouse (Brown & Haas, ICDE 2006)")
    parser.add_argument("--seed", type=int, default=2006,
                        help="master random seed (default: 2006)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_ingest = sub.add_parser("ingest", help="sample values into a "
                                             "warehouse directory")
    p_ingest.add_argument("--warehouse", required=True,
                          help="warehouse directory (created if missing)")
    p_ingest.add_argument("--dataset", required=True)
    p_ingest.add_argument("--input", required=True,
                          help="file of values, one per line ('-' = stdin)")
    p_ingest.add_argument("--column", default=None,
                          help="treat input as CSV and read this column")
    p_ingest.add_argument("--partitions", type=int, default=1)
    p_ingest.add_argument("--scheme", default="hr",
                          choices=["hb", "hr", "sb", "hb-mp"])
    p_ingest.add_argument("--bound", type=int, default=8192,
                          help="sample-size bound n_F (default: 8192)")
    p_ingest.add_argument("--sb-rate", type=float, default=None)
    p_ingest.add_argument("--label", default=None,
                          help="label applied to all created partitions")

    p_info = sub.add_parser("info", help="show catalog contents")
    p_info.add_argument("--warehouse", required=True)
    p_info.add_argument("--dataset", default=None)

    p_query = sub.add_parser("query", help="approximate aggregate")
    p_query.add_argument("--warehouse", required=True)
    p_query.add_argument("--dataset", required=True)
    p_query.add_argument("--agg", required=True,
                         choices=["count", "sum", "avg", "quantile"])
    p_query.add_argument("--fraction", type=float, default=0.5,
                         help="quantile fraction (default: 0.5)")
    p_query.add_argument("--labels", default=None,
                         help="comma-separated partition labels")
    p_query.add_argument("--confidence", type=float, default=0.95)

    p_rollup = sub.add_parser("rollup", help="merge consecutive "
                                             "partitions into windows")
    p_rollup.add_argument("--warehouse", required=True)
    p_rollup.add_argument("--dataset", required=True)
    p_rollup.add_argument("--window", type=int, required=True)
    p_rollup.add_argument("--store-as", default=None,
                          help="re-ingest rollups under this dataset name")

    p_bench = sub.add_parser(
        "bench",
        help="run the regression bench suite, compare two runs, or "
             "regenerate a paper figure")
    p_bench.add_argument("action", nargs="?", choices=["run"],
                         help="'run' executes the pinned suite and writes "
                              "BENCH_core.json + BENCH_merge.json")
    p_bench.add_argument("--figure", choices=["fig05", "s33"],
                         help="regenerate one paper figure instead")
    p_bench.add_argument("--trials", type=int, default=2000)
    p_bench.add_argument("--quick", action="store_true",
                         help="shrunk workloads (CI smoke; timings "
                              "informational)")
    p_bench.add_argument("--out-dir", default=".",
                         help="where 'run' writes the BENCH_*.json files")
    p_bench.add_argument("--compare", metavar="BASELINE",
                         help="baseline BENCH_*.json; flags regressions "
                              "and exits 1 if any")
    p_bench.add_argument("--candidate", metavar="NEW",
                         help="candidate report for --compare (default: "
                              "re-run the baseline's suite fresh)")
    p_bench.add_argument("--threshold", type=float, default=1.25,
                         help="regression ratio for --compare "
                              "(default 1.25)")

    p_audit = sub.add_parser("audit", help="verify warehouse consistency")
    p_audit.add_argument("--warehouse", required=True)

    p_obs = sub.add_parser("obs", help="instrumented ingest + merge demo: "
                                       "metrics and span trace")
    p_obs.add_argument("--partitions", type=int, default=10)
    p_obs.add_argument("--size", type=int, default=20_000,
                       help="total values to ingest (default: 20000)")
    p_obs.add_argument("--scheme", default="hb",
                       choices=["hb", "hr", "sb", "hb-mp"])
    p_obs.add_argument("--bound", type=int, default=256,
                       help="sample-size bound n_F (default: 256)")
    p_obs.add_argument("--sb-rate", type=float, default=0.01)
    p_obs.add_argument("--json", action="store_true",
                       help="print the metrics snapshot as JSON")
    p_obs.add_argument("--trace-out", default=None,
                       help="also write the span trace to this JSONL file")

    p_lint = sub.add_parser("lint", help="run the AST invariant checker "
                                         "(docs/static_analysis.md)")
    p_lint.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to lint "
                             "(default: src/repro)")
    p_lint.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text", dest="format",
                        help="report format (default: text)")
    p_lint.add_argument("--fail-on", default="warning", dest="fail_on",
                        metavar="SEVERITY",
                        help="minimum finding severity that fails the "
                             "run: 'warning' (any finding, the "
                             "default) or 'error' (warning-severity "
                             "findings report but exit 0)")
    p_lint.add_argument("--select", default=None,
                        help="comma-separated RPR0xx codes and/or "
                             "RPR06x-style family prefixes to run "
                             "(default: all rules)")
    p_lint.add_argument("--contract-doc", default=None,
                        help="observability contract page for the obs "
                             "rules (default: auto-discover "
                             "docs/observability.md above the paths)")
    p_lint.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parse files on N threads (0 = one per "
                             "CPU; default: 1)")
    p_lint.add_argument("--cache", default=None, metavar="PATH",
                        help="incremental cache file (default: "
                             ".repro-lint-cache.json)")
    p_lint.add_argument("--no-cache", action="store_true",
                        help="disable the incremental cache entirely")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")

    p_verify = sub.add_parser("verify", help="run the statistical "
                                             "acceptance battery "
                                             "(docs/testing.md)")
    p_verify.add_argument("--tier", choices=["fast", "deep"],
                          default="fast",
                          help="fast = quick PR gate; deep = more "
                               "seeds, bigger budgets, every check "
                               "(default: fast)")
    p_verify.add_argument("--format", choices=["text", "json"],
                          default="text", dest="format",
                          help="report format (default: text)")
    p_verify.add_argument("--alpha", type=float, default=0.01,
                          help="suite-wide false-alarm rate after "
                               "correction (default: 0.01)")
    p_verify.add_argument("--method", choices=["holm", "bh"],
                          default="bh",
                          help="multiple-testing correction: holm "
                               "(FWER) or bh (FDR; default)")
    p_verify.add_argument("--seeds", type=int, default=None,
                          help="seeds per check (default: the tier's "
                               "5 or 20)")
    p_verify.add_argument("--select", default=None,
                          help="comma-separated check names to run "
                               "(default: the tier's full catalog)")
    p_verify.add_argument("--list-checks", action="store_true",
                          help="print the check catalog and exit")

    p_serve = sub.add_parser("serve", help="serve a warehouse over "
                                           "HTTP (docs/serving.md)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8787)
    p_serve.add_argument("--warehouse", default=None,
                         help="warehouse directory to load and persist "
                              "(default: a fresh in-memory warehouse)")
    p_serve.add_argument("--bound", type=int, default=8192,
                         help="sample-size bound n_F (default: 8192)")
    p_serve.add_argument("--scheme", default="hr",
                         choices=["hb", "hr", "sb", "hb-mp"])
    p_serve.add_argument("--max-concurrent", type=int, default=64,
                         help="admitted requests executing at once")
    p_serve.add_argument("--max-queue", type=int, default=256,
                         help="waiting requests before shedding (503)")
    p_serve.add_argument("--cache-entries", type=int, default=128,
                         help="merge-cache capacity before LRU spill")
    p_serve.add_argument("--spill-dir", default=None,
                         help="spill evicted cache entries here "
                              "(relaxed-durability FileStore)")

    p_load = sub.add_parser(
        "loadtest",
        help="drive a service with N concurrent clients and write "
             "BENCH_serve.json")
    p_load.add_argument("--host", default=None,
                        help="target a running server (default: "
                             "self-hosted in-process service)")
    p_load.add_argument("--port", type=int, default=8787)
    p_load.add_argument("--clients", type=int, default=None,
                        help="concurrent simulated clients "
                             "(default: 500, or 64 with --quick)")
    p_load.add_argument("--requests-per-client", type=int, default=None,
                        help="requests each client issues "
                             "(default: 4, or 2 with --quick)")
    p_load.add_argument("--quick", action="store_true",
                        help="the CI smoke fleet shape")
    p_load.add_argument("--out", default="BENCH_serve.json",
                        help="report path (default: BENCH_serve.json)")

    return parser


def _cmd_ingest(args: argparse.Namespace) -> int:
    values = _read_values(args.input, args.column)
    if not values:
        print("no values read", file=sys.stderr)
        return 1
    try:
        wh = SampleWarehouse.load(args.warehouse,
                                  rng=SplittableRng(args.seed),
                                  bound_values=args.bound,
                                  scheme=args.scheme, sb_rate=args.sb_rate)
    except ReproError:
        wh = SampleWarehouse(bound_values=args.bound, scheme=args.scheme,
                             sb_rate=args.sb_rate,
                             rng=SplittableRng(args.seed))
    labels = [args.label] * args.partitions if args.label else None
    keys = wh.ingest_batch(args.dataset, values,
                           partitions=args.partitions, labels=labels)
    wh.save(args.warehouse)
    print(f"ingested {len(values)} values into {len(keys)} partition(s) "
          f"of {args.dataset!r}")
    for key in keys:
        sample = wh.sample_for(key)
        print(f"  {key}: {sample.kind.name} sample, "
              f"{sample.size}/{sample.population_size} values")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    wh = SampleWarehouse.load(args.warehouse,
                              rng=SplittableRng(args.seed))
    datasets = [args.dataset] if args.dataset else wh.datasets()
    rows = []
    for name in datasets:
        for meta in wh.catalog.partitions(name, only_active=False):
            rows.append((str(meta.key), meta.kind.name, meta.scheme,
                         meta.population_size, meta.sample_size,
                         meta.label or "-",
                         "active" if meta.active else "rolled-out"))
    print(format_table(("partition", "kind", "scheme", "population",
                        "sample", "label", "status"), rows))
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    wh = SampleWarehouse.load(args.warehouse,
                              rng=SplittableRng(args.seed))
    labels = args.labels.split(",") if args.labels else None
    sample = wh.sample_of(args.dataset, labels=labels)
    if args.agg == "quantile":
        value = estimate_quantile(sample, args.fraction)
        print(f"quantile({args.fraction}) ~ {value}")
        return 0
    fn = {"count": estimate_count, "sum": estimate_sum,
          "avg": estimate_avg}[args.agg]
    est = fn(sample, confidence=args.confidence)
    marker = " (exact)" if est.exact else ""
    print(f"{args.agg} ~ {est.value:g} "
          f"[{est.ci_low:g}, {est.ci_high:g}]{marker}")
    print(f"from a {sample.kind.name} sample of {sample.size} / "
          f"{sample.population_size} values")
    return 0


def _cmd_rollup(args: argparse.Namespace) -> int:
    from repro.warehouse.rollup import temporal_rollup_with_synopses

    wh = SampleWarehouse.load(args.warehouse,
                              rng=SplittableRng(args.seed))
    groups = temporal_rollup_with_synopses(
        wh, args.dataset, window=args.window,
        rng=SplittableRng(args.seed).spawn("rollup"))
    rows = [(name, s.kind.name, s.population_size, s.size)
            for name, (s, _) in sorted(groups.items())]
    print(format_table(("window", "kind", "population", "sample"), rows))
    if args.store_as:
        from repro.warehouse.dataset import PartitionKey

        for i, name in enumerate(sorted(groups)):
            sample, synopsis = groups[name]
            wh.ingest_sample(PartitionKey(args.store_as, 0, i),
                             sample, label=name, synopsis=synopsis)
        wh.save(args.warehouse)
        print(f"stored {len(groups)} rollup(s) as {args.store_as!r}")
    return 0


def _bench_figure(args: argparse.Namespace) -> int:
    if args.figure == "fig05":
        from repro.bench.experiments import FIG05_HEADERS, fig05_qapprox

        rows = fig05_qapprox()
        print(format_table(FIG05_HEADERS, rows,
                           title="Figure 5 (N = 1e5)"))
        print(f"max relative error: {max(r[4] for r in rows):.3f}%")
        return 0
    # s33
    from repro.bench.experiments import concise_demo

    counts = concise_demo(trials=args.trials,
                          rng=SplittableRng(args.seed))
    print(format_table(("histogram", "occurrences"),
                       sorted(counts.items()),
                       title="Section 3.3 counter-example"))
    ok = counts["H1"] > 0 and counts["H2"] > 0 and counts["H3"] == 0
    print("non-uniformity demonstrated" if ok else "UNEXPECTED OUTCOME")
    return 0 if ok else 1


def _bench_suite_table(results) -> List[tuple]:
    rows = []
    for r in results:
        params = ", ".join(f"{k}={v}"
                           for k, v in sorted(r.params.items()))
        rows.append((r.name, params, f"{r.seconds * 1000:.3f}",
                     r.repeats))
    return rows


def _bench_run(args: argparse.Namespace) -> int:
    import os

    from repro.bench.regression import (AQP_FILENAME, CORE_FILENAME,
                                        MERGE_FILENAME, SERVE_FILENAME,
                                        aqp_report_dict, report_dict,
                                        run_aqp_suite_with_pairs,
                                        run_core_suite, run_merge_suite,
                                        run_serve_suite_with_summary,
                                        serve_report_dict,
                                        validate_aqp_report,
                                        validate_serve_report,
                                        write_report)

    headers = ("workload", "params", "min ms", "repeats")
    written = []
    for suite, runner, filename in (
            ("core", run_core_suite, CORE_FILENAME),
            ("merge", run_merge_suite, MERGE_FILENAME)):
        results = runner(seed=args.seed, quick=args.quick)
        print(format_table(headers, _bench_suite_table(results),
                           title=f"bench suite: {suite}"
                                 + (" (quick)" if args.quick else "")))
        path = os.path.join(args.out_dir, filename)
        write_report(report_dict(suite, results, seed=args.seed,
                                 quick=args.quick), path)
        written.append(path)
    results, summary = run_serve_suite_with_summary(seed=args.seed,
                                                    quick=args.quick)
    print(format_table(headers, _bench_suite_table(results),
                       title="bench suite: serve"
                             + (" (quick)" if args.quick else "")))
    print(f"  fleet: {summary['clients']} clients x "
          f"{summary['requests_per_client']} requests, "
          f"{summary['throughput_rps']:.0f} req/s, "
          f"shed rate {summary['shed_rate']:.1%}")
    report = serve_report_dict(results, summary, seed=args.seed,
                               quick=args.quick)
    validate_serve_report(report)
    path = os.path.join(args.out_dir, SERVE_FILENAME)
    write_report(report, path)
    written.append(path)
    results, pairs = run_aqp_suite_with_pairs(seed=args.seed,
                                              quick=args.quick)
    print(format_table(headers, _bench_suite_table(results),
                       title="bench suite: aqp"
                             + (" (quick)" if args.quick else "")))
    for pair in pairs:
        if pair["partitions"] == max(p["partitions"] for p in pairs):
            print(f"  {pair['agg']}/{pair['shape']}"
                  f"/p{pair['partitions']}: {pair['speedup']:.1f}x, "
                  f"read {pair['selected']}/{pair['total_partitions']}"
                  + (" (fallback)" if pair["fallback"] else ""))
    report = aqp_report_dict(results, pairs, seed=args.seed,
                             quick=args.quick)
    validate_aqp_report(report)
    path = os.path.join(args.out_dir, AQP_FILENAME)
    write_report(report, path)
    written.append(path)
    print("wrote " + ", ".join(written))
    return 0


def _bench_compare(args: argparse.Namespace) -> int:
    from repro.bench.regression import (compare_reports, load_report,
                                        report_dict, run_aqp_suite,
                                        run_core_suite, run_merge_suite,
                                        run_serve_suite)

    baseline = load_report(args.compare)
    if args.candidate is not None:
        candidate = load_report(args.candidate)
    else:
        suites = {"core": run_core_suite, "merge": run_merge_suite,
                  "serve": run_serve_suite, "aqp": run_aqp_suite}
        runner = suites.get(baseline["suite"])
        if runner is None:
            raise ConfigurationError(
                f"baseline has unknown suite {baseline['suite']!r}; "
                "pass --candidate explicitly")
        results = runner(seed=baseline["seed"], quick=baseline["quick"])
        candidate = report_dict(baseline["suite"], results,
                                seed=baseline["seed"],
                                quick=baseline["quick"])
    regressions = compare_reports(baseline, candidate,
                                  threshold=args.threshold)
    if not regressions:
        print(f"no regressions beyond {args.threshold:.2f}x "
              f"({len(candidate['results'])} entries compared)")
        return 0
    print(f"{len(regressions)} regression(s) beyond {args.threshold:.2f}x:")
    for reg in regressions:
        print(f"  {reg.describe()}")
    return 1


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.figure is not None:
        return _bench_figure(args)
    if args.compare is not None:
        return _bench_compare(args)
    if args.action == "run":
        return _bench_run(args)
    raise ConfigurationError(
        "nothing to do: give 'run', --compare BASELINE, or --figure")


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.warehouse.audit import audit_warehouse

    wh = SampleWarehouse.load(args.warehouse,
                              rng=SplittableRng(args.seed))
    report = audit_warehouse(wh)
    print(report.summary())
    for problem in report.problems:
        print(f"  {problem}")
    return 0 if report.ok else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import (JsonlSink, MetricsRegistry, RingBufferSink,
                           TeeSink, capture)

    values = list(range(args.size))
    registry = MetricsRegistry()
    ring = RingBufferSink()
    jsonl = JsonlSink(args.trace_out) if args.trace_out else None
    sink = TeeSink(ring, jsonl) if jsonl is not None else ring
    try:
        with capture(registry, sink):
            wh = SampleWarehouse(bound_values=args.bound,
                                 scheme=args.scheme,
                                 sb_rate=args.sb_rate,
                                 rng=SplittableRng(args.seed))
            wh.ingest_batch("obs.demo", values,
                            partitions=args.partitions)
            merged = wh.sample_of("obs.demo")
    finally:
        if jsonl is not None:
            jsonl.close()
    if args.json:
        print(registry.to_json(indent=1))
    else:
        print(f"ingested {len(values)} values into {args.partitions} "
              f"{args.scheme} partition(s), merged: {merged.kind.name} "
              f"sample of {merged.size}/{merged.population_size} values")
        print()
        print(registry.report())
        print()
        print("trace (nested spans):")
        print(ring.render())
    if args.trace_out:
        print(f"trace written to {args.trace_out}", file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (all_rules, render_json, render_sarif,
                                render_text, run_lint, severity_for)
    from repro.analysis.framework import SEVERITIES

    if args.list_rules:
        rows = [(r.code, r.name, r.scope, r.severity, r.summary)
                for r in all_rules()]
        print(format_table(("code", "name", "scope", "severity",
                            "summary"), rows))
        return 0
    if args.fail_on not in SEVERITIES:
        raise ConfigurationError(
            f"unknown --fail-on severity {args.fail_on!r}; expected "
            f"one of: {', '.join(SEVERITIES)}")
    select = args.select.split(",") if args.select else None
    contract = args.contract_doc if args.contract_doc else "auto"
    cache = None
    if not args.no_cache:
        from repro.analysis.cache import DEFAULT_CACHE_PATH, LintCache

        cache = LintCache(args.cache or DEFAULT_CACHE_PATH)
    findings, project = run_lint(args.paths, contract_doc=contract,
                                 select=select, jobs=args.jobs,
                                 cache=cache)
    checked = len(project.files)
    if args.format == "json":
        print(render_json(findings, checked_files=checked, indent=1))
    elif args.format == "sarif":
        print(render_sarif(findings))
    else:
        print(render_text(findings, checked_files=checked))
    # --fail-on error: warning-tier findings are reported but do not
    # fail the run (SEVERITIES is ordered most-severe-first).
    threshold = SEVERITIES.index(args.fail_on)
    failing = [f for f in findings
               if SEVERITIES.index(severity_for(f.code)) <= threshold]
    return 1 if failing else 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.testkit import default_battery, render_json, render_text

    battery = default_battery()
    if args.list_checks:
        rows = [(c.name, c.tier, c.kind,
                 "reject" if c.expect_reject else "accept",
                 c.description)
                for c in battery.checks()]
        print(format_table(("check", "tier", "kind", "expects",
                            "description"), rows))
        return 0
    select = args.select.split(",") if args.select else None
    report = battery.run(rng=SplittableRng(args.seed), tier=args.tier,
                         seeds=args.seeds, alpha=args.alpha,
                         method=args.method, select=select)
    if args.format == "json":
        print(render_json(report, indent=1))
    else:
        print(render_text(report))
    return 0 if report.passed else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.obs import enable
    from repro.serve.app import ServeConfig, WarehouseService

    if args.warehouse:
        try:
            wh = SampleWarehouse.load(args.warehouse,
                                      rng=SplittableRng(args.seed),
                                      bound_values=args.bound,
                                      scheme=args.scheme)
        except ReproError:
            wh = SampleWarehouse(bound_values=args.bound,
                                 scheme=args.scheme,
                                 rng=SplittableRng(args.seed))
    else:
        wh = SampleWarehouse(bound_values=args.bound, scheme=args.scheme,
                             rng=SplittableRng(args.seed))
    enable()  # the /metrics endpoint reports live counters
    config = ServeConfig(max_concurrent=args.max_concurrent,
                         max_queue=args.max_queue,
                         cache_entries=args.cache_entries,
                         spill_dir=args.spill_dir)
    service = WarehouseService(wh, config=config)

    async def run() -> None:
        host, port = await service.start(args.host, args.port)
        print(f"serving on http://{host}:{port} "
              f"(seed {args.seed}, scheme {args.scheme!r})", flush=True)
        try:
            await service.serve_forever()
        finally:
            await service.aclose()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        if args.warehouse:
            wh.save(args.warehouse)
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import asyncio

    from repro.bench.regression import (serve_report_dict, serve_results,
                                        validate_serve_report,
                                        write_report)
    from repro.serve.loadtest import run_loadtest, run_self_hosted

    clients = args.clients if args.clients is not None \
        else (64 if args.quick else 500)
    requests = args.requests_per_client \
        if args.requests_per_client is not None \
        else (2 if args.quick else 4)
    if args.host is not None:
        summary = asyncio.run(run_loadtest(
            args.host, args.port, clients=clients,
            requests_per_client=requests, seed=args.seed,
            preload_values=5_000))
    else:
        summary = run_self_hosted(seed=args.seed, clients=clients,
                                  requests_per_client=requests)
    latency = summary["latency"]
    print(f"{clients} clients x {requests} requests: "
          f"{summary['completed']}/{summary['total_requests']} "
          f"completed, shed rate {summary['shed_rate']:.1%}, "
          f"{summary['throughput_rps']:.0f} req/s")
    if latency is not None:
        print(f"latency p50 {latency['p50'] * 1000:.2f} ms, "
              f"p99 {latency['p99'] * 1000:.2f} ms, "
              f"max {latency['max'] * 1000:.2f} ms")
    report = serve_report_dict(serve_results(summary), summary,
                               seed=args.seed, quick=args.quick)
    validate_serve_report(report)
    write_report(report, args.out)
    print(f"wrote {args.out}")
    return 0 if summary["completed"] > 0 else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "ingest": _cmd_ingest,
        "info": _cmd_info,
        "query": _cmd_query,
        "rollup": _cmd_rollup,
        "bench": _cmd_bench,
        "audit": _cmd_audit,
        "obs": _cmd_obs,
        "lint": _cmd_lint,
        "verify": _cmd_verify,
        "serve": _cmd_serve,
        "loadtest": _cmd_loadtest,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

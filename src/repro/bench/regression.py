"""The pinned regression-bench suite behind ``repro bench run``.

Every PR that claims a speedup needs a number, and every PR that costs
one needs to be caught; this module is the measurement loop for both.
``run_core_suite`` times batch-ingest throughput per scheme and
merge-on-demand query latency; ``run_merge_suite`` times 2/4/8/16-way
merge trees serial vs parallel; ``run_serve_suite`` loadtests the HTTP
serving layer end to end (p50/p99 request latency under a concurrent
client fleet; see docs/serving.md).  Each writes one report
(``BENCH_core.json`` / ``BENCH_merge.json`` / ``BENCH_serve.json``,
schema ``repro-bench/1``) at the repo root, and
:func:`compare_reports` diffs two reports and flags entries slower
than a threshold ratio — the check ``repro bench --compare`` runs in
CI.

Methodology: every workload is deterministic from the suite seed (same
data, same sample sizes every run), each entry reports the **minimum**
over its repeats (the standard noise-robust statistic for wall-clock
microbenchmarks), and comparisons require both a ratio beyond the
threshold *and* an absolute slowdown beyond ``min_seconds`` so
sub-millisecond entries cannot flag on scheduler jitter.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.timing import wall_timer
from repro.errors import ConfigurationError
from repro.rng import SplittableRng

__all__ = [
    "SCHEMA",
    "CORE_FILENAME",
    "MERGE_FILENAME",
    "SERVE_FILENAME",
    "AQP_FILENAME",
    "DEFAULT_THRESHOLD",
    "BenchResult",
    "run_core_suite",
    "run_merge_suite",
    "run_serve_suite",
    "run_serve_suite_with_summary",
    "run_aqp_suite",
    "run_aqp_suite_with_pairs",
    "aqp_report_dict",
    "validate_aqp_report",
    "serve_results",
    "serve_report_dict",
    "validate_serve_report",
    "report_dict",
    "validate_report",
    "load_report",
    "write_report",
    "compare_reports",
]

SCHEMA = "repro-bench/1"
CORE_FILENAME = "BENCH_core.json"
MERGE_FILENAME = "BENCH_merge.json"
SERVE_FILENAME = "BENCH_serve.json"
AQP_FILENAME = "BENCH_aqp.json"

#: A candidate entry flags as a regression when it is more than this
#: many times slower than the baseline (and slower by ``min_seconds``).
DEFAULT_THRESHOLD = 1.25

#: Absolute slack: ratio violations faster than this are ignored, so
#: microsecond-scale entries cannot regress on scheduler noise alone.
DEFAULT_MIN_SECONDS = 0.005

_INGEST_SCHEMES = ("hb", "hr", "sb", "hb-mp")
_MERGE_PARTITIONS = (2, 4, 8, 16)
_MERGE_WORKERS = 2

#: The heavy merge entries: wide-histogram workloads sized so the
#: kernel layer's vectorized inner loops dominate wall time.  These
#: carry a ``backend`` param (the active kernel backend), so reports
#: taken on different backends never silently compare against each
#: other.
_HEAVY_PARTITIONS = (8, 16)
_HEAVY_WORKERS = 4
_HEAVY_BOUND = 4_096


@dataclass(frozen=True)
class BenchResult:
    """One timed workload: identity (name + params) and its seconds."""

    name: str
    params: Dict[str, object]
    seconds: float
    repeats: int

    def key(self) -> Tuple[object, ...]:
        """Identity for cross-report matching (name + sorted params)."""
        return (self.name, tuple(sorted(self.params.items())))

    def to_dict(self) -> dict:
        return {"name": self.name, "params": dict(self.params),
                "seconds": self.seconds, "repeats": self.repeats}


def _time_min(fn, repeats: int) -> float:
    """Minimum wall time of ``fn()`` over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        with wall_timer() as t:
            fn()
        best = min(best, t.seconds)
    return best


def run_core_suite(*, seed: int = 2006, quick: bool = False
                   ) -> List[BenchResult]:
    """Batch-ingest throughput per scheme + warehouse query latency.

    ``quick`` shrinks the workload (CI smoke); timings are then only
    informational, but the report shape is identical.
    """
    from repro.analytics.estimators import estimate_avg
    from repro.warehouse.warehouse import SampleWarehouse

    values_total = 4_000 if quick else 20_000
    partitions = 8
    repeats = 2 if quick else 3
    results: List[BenchResult] = []
    data = list(range(values_total))

    for scheme in _INGEST_SCHEMES:
        def ingest(scheme: str = scheme) -> None:
            wh = SampleWarehouse(bound_values=256, scheme=scheme,
                                 sb_rate=0.05, rng=SplittableRng(seed))
            wh.ingest_batch("bench.d", data, partitions=partitions)

        results.append(BenchResult(
            name="ingest.batch",
            params={"scheme": scheme, "values": values_total,
                    "partitions": partitions},
            seconds=_time_min(ingest, repeats),
            repeats=repeats,
        ))

    wh = SampleWarehouse(bound_values=256, scheme="hr",
                         rng=SplittableRng(seed))
    wh.ingest_batch("bench.q", data, partitions=partitions)

    def query() -> None:
        sample = wh.sample_of("bench.q")
        estimate_avg(sample)

    results.append(BenchResult(
        name="warehouse.query",
        params={"scheme": "hr", "values": values_total,
                "partitions": partitions},
        seconds=_time_min(query, repeats),
        repeats=repeats,
    ))
    return results


def _merge_inputs(partitions: int, values_per: int, seed: int, *,
                  bound: int = 128):
    """Deterministic per-partition HR samples for the merge bench."""
    from repro.warehouse.parallel import SampleTask, sample_partition

    rng = SplittableRng(seed)
    data_rng = rng.spawn("data")
    samples = []
    for i in range(partitions):
        values = [data_rng.randrange(100_000) for _ in range(values_per)]
        samples.append(sample_partition(SampleTask(
            values=values, scheme="hr", bound_values=bound,
            seed=rng.spawn("part", i).seed_value)))
    return samples


def run_merge_suite(*, seed: int = 2006, quick: bool = False
                    ) -> List[BenchResult]:
    """2/4/8/16-partition merge trees, serial vs parallel.

    The parallel entries run on a two-worker :class:`ThreadExecutor`
    (threads, not processes: merge nodes are milliseconds, so process
    spawn cost would swamp the thing being measured; the differential
    tests cover process-pool byte-identity separately).  Serial and
    parallel merge the *same* inputs with the *same* rng, so the pair
    is the paper's Figures 9-14 speedup question in miniature.

    On top of the pinned light entries (whose params never change, so
    reports stay comparable across releases), the suite times *heavy*
    entries — 8/16 partitions, ``_HEAVY_BOUND``-value histograms,
    four workers — where the kernel layer's vectorized merge loops
    dominate.  Heavy entries carry the active kernel backend as a
    param; see docs/performance.md for how to read them.
    """
    from repro.core.merge import merge_tree
    from repro.kernels import active_backend
    from repro.warehouse.parallel import ThreadExecutor

    values_per = 800 if quick else 3_000
    heavy_values_per = 2_048 if quick else 16_384
    repeats = 2 if quick else 3
    results: List[BenchResult] = []

    with ThreadExecutor(max_workers=_MERGE_WORKERS) as executor:
        for partitions in _MERGE_PARTITIONS:
            samples = _merge_inputs(partitions, values_per, seed)
            rng = SplittableRng(seed)

            def serial() -> None:
                merge_tree(samples, rng=rng, mode="serial")

            def parallel() -> None:
                merge_tree(samples, rng=rng, mode="parallel",
                           executor=executor)

            results.append(BenchResult(
                name="merge.tree",
                params={"partitions": partitions, "mode": "serial",
                        "values_per_partition": values_per},
                seconds=_time_min(serial, repeats),
                repeats=repeats,
            ))
            results.append(BenchResult(
                name="merge.tree",
                params={"partitions": partitions, "mode": "parallel",
                        "workers": _MERGE_WORKERS,
                        "values_per_partition": values_per},
                seconds=_time_min(parallel, repeats),
                repeats=repeats,
            ))

    backend = active_backend()
    with ThreadExecutor(max_workers=_HEAVY_WORKERS) as executor:
        for partitions in _HEAVY_PARTITIONS:
            samples = _merge_inputs(partitions, heavy_values_per, seed,
                                    bound=_HEAVY_BOUND)
            rng = SplittableRng(seed)

            def serial() -> None:
                merge_tree(samples, rng=rng, mode="serial")

            def parallel() -> None:
                merge_tree(samples, rng=rng, mode="parallel",
                           executor=executor)

            common = {"partitions": partitions, "bound": _HEAVY_BOUND,
                      "values_per_partition": heavy_values_per,
                      "backend": backend}
            results.append(BenchResult(
                name="merge.tree.heavy",
                params={**common, "mode": "serial"},
                seconds=_time_min(serial, repeats),
                repeats=repeats,
            ))
            results.append(BenchResult(
                name="merge.tree.heavy",
                params={**common, "mode": "parallel",
                        "workers": _HEAVY_WORKERS},
                seconds=_time_min(parallel, repeats),
                repeats=repeats,
            ))
    return results


#: Serve-suite fleet shape: (quick, full).  The full shape is the
#: acceptance bar — 500 concurrent simulated clients; quick is the CI
#: smoke shape.  ``repro bench --compare BENCH_serve.json`` re-runs
#: with the same shape, so entries always match on params.
_SERVE_CLIENTS = (64, 500)
_SERVE_REQUESTS = (2, 4)


def serve_results(summary: dict) -> List[BenchResult]:
    """Bench entries derived from one loadtest summary block.

    Latency percentiles and the whole-run wall time become ordinary
    ``seconds`` entries so :func:`compare_reports` gates them like any
    other suite; throughput and shed rate stay in the report's
    ``serve`` block (they are not durations).
    """
    if summary.get("latency") is None:
        raise ConfigurationError(
            "loadtest completed no requests (everything shed?); "
            "no latency entries to report")
    params = {"clients": summary["clients"],
              "requests_per_client": summary["requests_per_client"]}
    latency = summary["latency"]
    return [
        BenchResult(name="serve.query.latency",
                    params={**params, "stat": "p50"},
                    seconds=latency["p50"], repeats=1),
        BenchResult(name="serve.query.latency",
                    params={**params, "stat": "p99"},
                    seconds=latency["p99"], repeats=1),
        BenchResult(name="serve.loadtest.wall", params=dict(params),
                    seconds=summary["wall_seconds"], repeats=1),
    ]


def run_serve_suite_with_summary(*, seed: int = 2006,
                                 quick: bool = False
                                 ) -> Tuple[List[BenchResult], dict]:
    """Self-hosted loadtest at the pinned fleet shape.

    Returns the bench entries plus the raw summary for the report's
    ``serve`` block.  Quick: 64 clients x 2 requests; full: 500 x 4
    (the acceptance shape).
    """
    from repro.serve.loadtest import run_self_hosted

    clients = _SERVE_CLIENTS[0] if quick else _SERVE_CLIENTS[1]
    requests = _SERVE_REQUESTS[0] if quick else _SERVE_REQUESTS[1]
    summary = run_self_hosted(seed=seed, clients=clients,
                              requests_per_client=requests)
    return serve_results(summary), summary


def run_serve_suite(*, seed: int = 2006, quick: bool = False
                    ) -> List[BenchResult]:
    """The serve suite's bench entries (the ``--compare`` runner)."""
    results, _summary = run_serve_suite_with_summary(seed=seed,
                                                     quick=quick)
    return results


#: AQP-suite shape.  Partition counts span the regime where merge-all
#: latency visibly scales; the target is the paper-style "2 % relative
#: half-width at 95 %".  Every ``est_every``-th partition is ingested
#: as a foreign sample whose synopsis was computed upstream from a
#: coarse sketch (``_AQP_SYNOPSIS_BOUND`` values), so planning has real
#: estimated strata to rank and, where the bound demands it, select.
_AQP_PARTITIONS = (16, 64, 128)
_AQP_SHAPES = ("uniform", "skewed")
_AQP_AGGS = ("count", "sum", "avg")
_AQP_TARGET = 0.02
_AQP_EST_EVERY = 4
_AQP_LIVE_BOUND = 256
_AQP_SYNOPSIS_BOUND = 32
#: The acceptance bar (docs/aqp.md): planned must beat merge-all by at
#: least this factor at the largest partition count, full runs only.
_AQP_MIN_SPEEDUP = 2.0


def _aqp_value(shape: str, rng: SplittableRng) -> float:
    """One value of the bench population: uniform or heavy-tailed."""
    if shape == "uniform":
        return float(rng.randrange(1_000) + 1)
    # Log-uniform over three decades, shifted off zero: a heavy right
    # tail (sigma comparable to the mean) without unbounded outliers.
    return 100.0 + 10.0 ** (3.0 * rng.random())


def _aqp_warehouse(shape: str, partitions: int, seed: int,
                   quick: bool):
    """A mixed warehouse: mostly exact synopses, some estimated.

    Batch-style partitions carry exact synopses (raw values in hand at
    ingest); every ``_AQP_EST_EVERY``-th partition arrives as a foreign
    sample with an upstream synopsis estimated from a coarser sketch —
    the strata the planner actually has to reason about.
    """
    from repro.warehouse.dataset import PartitionKey
    from repro.warehouse.parallel import SampleTask, sample_partition
    from repro.warehouse.synopsis import PartitionSynopsis
    from repro.warehouse.warehouse import SampleWarehouse

    values_per = 400 if quick else 1_500
    rng = SplittableRng(seed)
    data_rng = rng.spawn("data", shape, partitions)
    wh = SampleWarehouse(bound_values=_AQP_LIVE_BOUND, scheme="hr",
                         rng=rng.spawn("wh", shape, partitions))
    dataset = f"aqp.{shape}"
    for i in range(partitions):
        values = [_aqp_value(shape, data_rng) for _ in range(values_per)]
        sample = sample_partition(SampleTask(
            values=values, scheme="hr", bound_values=_AQP_LIVE_BOUND,
            seed=rng.spawn("live", i).seed_value))
        if i % _AQP_EST_EVERY == 0:
            sketch = sample_partition(SampleTask(
                values=values, scheme="hr",
                bound_values=_AQP_SYNOPSIS_BOUND,
                seed=rng.spawn("sketch", i).seed_value))
            synopsis = PartitionSynopsis.from_sample(sketch)
        else:
            synopsis = PartitionSynopsis.from_values(values)
        wh.ingest_sample(PartitionKey(dataset, 0, i), sample,
                         synopsis=synopsis)
    return wh, dataset


def run_aqp_suite_with_pairs(*, seed: int = 2006, quick: bool = False
                             ) -> Tuple[List[BenchResult], List[dict]]:
    """Planned vs merge-all aggregate latency across partition counts.

    For each (shape, partitions, agg) the suite times the same query
    twice on a fresh engine: ``aqp.planned`` passes the pinned 2 %
    relative target (the planner certifies from synopses and reads only
    the selected samples) and ``aqp.merge_all`` runs the legacy path
    (merge every partition, then estimate).  Returns the bench entries
    plus one pair record per comparison for the report's ``aqp`` block:
    speedup, certification, and how many partitions the plan read.
    """
    from repro.analytics.aqp import ApproximateQueryEngine

    repeats = 2 if quick else 3
    results: List[BenchResult] = []
    pairs: List[dict] = []
    for shape in _AQP_SHAPES:
        for partitions in _AQP_PARTITIONS:
            wh, dataset = _aqp_warehouse(shape, partitions, seed, quick)
            probe = ApproximateQueryEngine(wh)
            for agg in _AQP_AGGS:
                summary = probe.plan_summary(
                    dataset, agg, target_half_width=_AQP_TARGET,
                    relative_target=True)

                def planned(agg: str = agg) -> None:
                    engine = ApproximateQueryEngine(wh)
                    getattr(engine, agg)(
                        dataset, target_half_width=_AQP_TARGET,
                        relative_target=True)

                def merge_all(agg: str = agg) -> None:
                    engine = ApproximateQueryEngine(wh)
                    getattr(engine, agg)(dataset)

                params = {"agg": agg, "shape": shape,
                          "partitions": partitions,
                          "target": _AQP_TARGET}
                planned_s = _time_min(planned, repeats)
                merged_s = _time_min(merge_all, repeats)
                results.append(BenchResult(
                    name="aqp.planned", params=params,
                    seconds=planned_s, repeats=repeats))
                results.append(BenchResult(
                    name="aqp.merge_all", params=params,
                    seconds=merged_s, repeats=repeats))
                pairs.append({
                    "agg": agg, "shape": shape,
                    "partitions": partitions,
                    "planned_seconds": planned_s,
                    "merge_all_seconds": merged_s,
                    "speedup": (merged_s / planned_s
                                if planned_s > 0 else float("inf")),
                    "certified": summary["certified"],
                    "fallback": summary["fallback"],
                    "selected": summary["selected"]
                    if isinstance(summary["selected"], int)
                    else len(summary["selected"]),
                    "total_partitions": summary["total_partitions"],
                })
    return results, pairs


def run_aqp_suite(*, seed: int = 2006, quick: bool = False
                  ) -> List[BenchResult]:
    """The AQP suite's bench entries (the ``--compare`` runner)."""
    results, _pairs = run_aqp_suite_with_pairs(seed=seed, quick=quick)
    return results


def aqp_report_dict(results: Sequence[BenchResult], pairs: List[dict],
                    *, seed: int, quick: bool) -> dict:
    """An AQP-suite report: ``repro-bench/1`` plus the ``aqp`` block."""
    report = report_dict("aqp", results, seed=seed, quick=quick)
    report["aqp"] = {"target": _AQP_TARGET, "pairs": pairs}
    return report


def validate_aqp_report(report: dict) -> None:
    """Validate a ``BENCH_aqp.json`` (base schema + aqp block).

    Full (non-quick) reports must also clear the acceptance bar: every
    aggregate certified and at least ``_AQP_MIN_SPEEDUP``x faster than
    merge-all at the largest partition count, on both shapes.  Quick
    reports (CI smoke) are validated structurally only — their timings
    are one-repeat noise.
    """
    validate_report(report)
    if report.get("suite") != "aqp":
        raise ConfigurationError(
            f"aqp report has suite {report.get('suite')!r}")
    block = report.get("aqp")
    if not isinstance(block, dict):
        raise ConfigurationError("aqp report needs an 'aqp' block")
    if not isinstance(block.get("target"), (int, float)):
        raise ConfigurationError("aqp block needs a numeric 'target'")
    pairs = block.get("pairs")
    if not isinstance(pairs, list) or not pairs:
        raise ConfigurationError(
            "aqp block needs a non-empty 'pairs' array")
    for i, pair in enumerate(pairs):
        if not isinstance(pair, dict):
            raise ConfigurationError(f"aqp pairs[{i}] must be an object")
        for field, kind in (("agg", str), ("shape", str),
                            ("partitions", int), ("selected", int),
                            ("total_partitions", int),
                            ("planned_seconds", (int, float)),
                            ("merge_all_seconds", (int, float)),
                            ("speedup", (int, float)),
                            ("certified", bool), ("fallback", bool)):
            if not isinstance(pair.get(field), kind) or \
                    (kind is int and isinstance(pair.get(field), bool)):
                raise ConfigurationError(
                    f"aqp pairs[{i}].{field} must be "
                    f"{kind.__name__ if isinstance(kind, type) else 'numeric'}")
    if report.get("quick"):
        return
    largest = max(p["partitions"] for p in pairs)
    for pair in pairs:
        if pair["partitions"] != largest:
            continue
        label = f"{pair['agg']}/{pair['shape']}/p{pair['partitions']}"
        if not pair["certified"] or pair["fallback"]:
            raise ConfigurationError(
                f"aqp acceptance: {label} did not certify the "
                f"{block['target']:.0%} target")
        if pair["speedup"] < _AQP_MIN_SPEEDUP:
            raise ConfigurationError(
                f"aqp acceptance: {label} speedup {pair['speedup']:.2f}x "
                f"is below the {_AQP_MIN_SPEEDUP:.1f}x bar")


def serve_report_dict(results: Sequence[BenchResult], summary: dict, *,
                      seed: int, quick: bool) -> dict:
    """A serve-suite report: ``repro-bench/1`` plus the ``serve`` block."""
    report = report_dict("serve", results, seed=seed, quick=quick)
    report["serve"] = summary
    return report


def validate_serve_report(report: dict) -> None:
    """Validate a ``BENCH_serve.json`` (base schema + serve block)."""
    validate_report(report)
    if report.get("suite") != "serve":
        raise ConfigurationError(
            f"serve report has suite {report.get('suite')!r}")
    block = report.get("serve")
    if not isinstance(block, dict):
        raise ConfigurationError(
            "serve report needs a 'serve' summary object")
    for field, kind in (("clients", int), ("requests_per_client", int),
                        ("total_requests", int), ("completed", int),
                        ("shed", int), ("errors", int),
                        ("shed_rate", (int, float)),
                        ("wall_seconds", (int, float)),
                        ("throughput_rps", (int, float))):
        if not isinstance(block.get(field), kind) \
                or isinstance(block.get(field), bool):
            raise ConfigurationError(
                f"serve block field {field!r} must be "
                f"{kind if isinstance(kind, type) else 'numeric'}")
    if not 0.0 <= block["shed_rate"] <= 1.0:
        raise ConfigurationError(
            f"shed_rate must be in [0, 1], got {block['shed_rate']}")
    latency = block.get("latency")
    if latency is not None:
        if not isinstance(latency, dict):
            raise ConfigurationError("serve latency must be an object")
        for stat in ("p50", "p90", "p99", "max", "mean"):
            value = latency.get(stat)
            if not isinstance(value, (int, float)) or value < 0:
                raise ConfigurationError(
                    f"serve latency.{stat} must be a non-negative "
                    "number")


def report_dict(suite: str, results: Sequence[BenchResult], *,
                seed: int, quick: bool) -> dict:
    """Assemble the ``repro-bench/1`` report structure."""
    return {
        "schema": SCHEMA,
        "suite": suite,
        "seed": seed,
        "quick": quick,
        "results": [r.to_dict() for r in results],
    }


def validate_report(report: dict) -> None:
    """Raise :class:`ConfigurationError` unless ``report`` is well-formed."""
    if not isinstance(report, dict):
        raise ConfigurationError("bench report must be a JSON object")
    if report.get("schema") != SCHEMA:
        raise ConfigurationError(
            f"unsupported bench schema {report.get('schema')!r}; "
            f"expected {SCHEMA!r}")
    for field, kind in (("suite", str), ("seed", int), ("quick", bool),
                        ("results", list)):
        if not isinstance(report.get(field), kind):
            raise ConfigurationError(
                f"bench report field {field!r} must be {kind.__name__}")
    for i, entry in enumerate(report["results"]):
        if not isinstance(entry, dict):
            raise ConfigurationError(f"results[{i}] must be an object")
        if not isinstance(entry.get("name"), str):
            raise ConfigurationError(f"results[{i}].name must be a string")
        if not isinstance(entry.get("params"), dict):
            raise ConfigurationError(
                f"results[{i}].params must be an object")
        seconds = entry.get("seconds")
        if not isinstance(seconds, (int, float)) or seconds < 0:
            raise ConfigurationError(
                f"results[{i}].seconds must be a non-negative number")
        repeats = entry.get("repeats")
        if not isinstance(repeats, int) or repeats <= 0:
            raise ConfigurationError(
                f"results[{i}].repeats must be a positive integer")


def _results_of(report: dict) -> List[BenchResult]:
    return [BenchResult(name=e["name"], params=e["params"],
                        seconds=float(e["seconds"]), repeats=e["repeats"])
            for e in report["results"]]


def load_report(path: str) -> dict:
    """Read and validate a bench report file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except OSError as exc:
        raise ConfigurationError(f"cannot read bench report: {exc}")
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"bench report is not valid JSON: {exc}")
    validate_report(report)
    return report


def write_report(report: dict, path: str) -> None:
    """Validate and write one report (stable key order, trailing newline)."""
    validate_report(report)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


@dataclass(frozen=True)
class Regression:
    """One candidate entry slower than its baseline beyond the threshold."""

    name: str
    params: Dict[str, object]
    baseline_seconds: float
    candidate_seconds: float

    @property
    def ratio(self) -> float:
        return self.candidate_seconds / self.baseline_seconds

    def describe(self) -> str:
        params = ", ".join(f"{k}={v}"
                           for k, v in sorted(self.params.items()))
        return (f"{self.name}[{params}]: {self.baseline_seconds:.6f}s -> "
                f"{self.candidate_seconds:.6f}s ({self.ratio:.2f}x)")


def compare_reports(baseline: dict, candidate: dict, *,
                    threshold: float = DEFAULT_THRESHOLD,
                    min_seconds: float = DEFAULT_MIN_SECONDS
                    ) -> List[Regression]:
    """Entries of ``candidate`` that regressed against ``baseline``.

    Matched on :meth:`BenchResult.key`; entries present in only one
    report are ignored (suites may grow).  An entry regresses when
    ``candidate > baseline * threshold`` **and** the absolute slowdown
    exceeds ``min_seconds``.
    """
    validate_report(baseline)
    validate_report(candidate)
    if threshold <= 1.0:
        raise ConfigurationError(
            f"threshold must be > 1.0, got {threshold}")
    base_by_key = {r.key(): r for r in _results_of(baseline)}
    regressions: List[Regression] = []
    for cand in _results_of(candidate):
        base = base_by_key.get(cand.key())
        if base is None or base.seconds <= 0.0:
            continue
        if (cand.seconds > base.seconds * threshold
                and cand.seconds - base.seconds > min_seconds):
            regressions.append(Regression(
                name=cand.name, params=cand.params,
                baseline_seconds=base.seconds,
                candidate_seconds=cand.seconds))
    return regressions

"""Per-figure experiment drivers (the reproduction of Section 5).

Each function regenerates the data behind one paper figure and returns it
as a list of row tuples (plus helpers to print them).  Figure-by-figure:

* :func:`fig05_qapprox` — relative error of eq. (1) vs the exact rate.
* :func:`speedup_experiment` — Figures 9-11: sample/merge seconds vs
  partition count at a fixed population (per scheme).
* :func:`scaleup_experiment` — Figures 12-14: seconds vs scale factor at
  a fixed per-partition size, for the three distributions (per scheme).
* :func:`sample_size_experiment` — Figures 15-16: final merged sample
  size vs partition count (HB for several ``p``; HR).
* :func:`concise_demo` — the Section 3.3 non-uniformity counter-example.
* :func:`conclusions_check` — the four summary conclusions of Section 5,
  evaluated on our measurements.

The defaults are scaled down from the paper's 2^26-element populations so
a full reproduction runs in minutes of laptop CPU; every driver takes the
scale parameters explicitly and ``EXPERIMENTS.md`` records the scales
used.  Crucially the *ratios* that drive the shapes (partition size over
sample bound = 4, like the paper's 32K/8192) are preserved.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import repeat_pipeline
from repro.rng import SplittableRng
from repro.sampling.exceedance import exact_bernoulli_rate, normal_approx_rate
from repro.stats.summaries import coefficient_of_variation, mean
from repro.stats.uniformity import concise_nonuniformity_demo
from repro.workloads.scenarios import Scenario

__all__ = [
    "fig05_qapprox",
    "speedup_experiment",
    "scaleup_experiment",
    "sample_size_experiment",
    "concise_demo",
    "conclusions_check",
    "FIG05_HEADERS",
    "SPEEDUP_HEADERS",
    "SCALEUP_HEADERS",
    "SIZES_HEADERS",
]

FIG05_HEADERS = ("p", "n_F", "q_exact", "q_approx", "rel_err_%")
SPEEDUP_HEADERS = ("partitions", "sample_s", "merge_s", "total_s")
SCALEUP_HEADERS = ("scale", "distribution", "total_s")
SIZES_HEADERS = ("partitions", "distribution", "p", "mean_size", "cv")

#: Figure 5's parameters: N = 1e5, p spanning 1e-5..5e-3, three bounds.
FIG05_POPULATION = 100_000
FIG05_P_VALUES = (1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3)
FIG05_BOUNDS = (100, 1_000, 10_000)


def fig05_qapprox(*, population: int = FIG05_POPULATION,
                  p_values: Sequence[float] = FIG05_P_VALUES,
                  bounds: Sequence[int] = FIG05_BOUNDS
                  ) -> List[Tuple[float, int, float, float, float]]:
    """Figure 5: relative error (%) of the eq. (1) approximation.

    The paper reports the error never exceeding 2.765% for N = 1e5.
    """
    rows = []
    for bound in bounds:
        for p in p_values:
            exact = exact_bernoulli_rate(population, p, bound)
            approx = normal_approx_rate(population, p, bound)
            rel = abs(approx - exact) / exact * 100.0
            rows.append((p, bound, exact, approx, rel))
    return rows


def speedup_experiment(scheme: str, *,
                       population: int,
                       partition_counts: Sequence[int],
                       bound_values: int,
                       rng: SplittableRng,
                       distribution: str = "unique",
                       repeats: int = 3
                       ) -> List[Tuple[int, float, float, float]]:
    """Figures 9-11: cost vs partition count at fixed population size.

    Returns ``(partitions, sample_s, merge_s, total_s)`` rows, each
    averaged over ``repeats`` runs.  ``sample_s`` is the *elapsed* time
    of fully-parallel sampling (one worker per partition — the slowest
    partition's time, which is what the paper's light bars chart) and
    ``merge_s`` the serial pairwise merge time: more partitions shrink
    the former but grow the latter — the U-shaped total-cost curve whose
    minimum marks the speedup limit.
    """
    rows = []
    for parts in partition_counts:
        if parts > population:
            continue
        scenario = Scenario(distribution, population, parts)
        results = repeat_pipeline(scenario, scheme,
                                  bound_values=bound_values,
                                  rng=rng.spawn("speedup", scheme, parts),
                                  repeats=repeats)
        sample_s = mean([r.sample_seconds_parallel for r in results])
        merge_s = mean([r.merge_seconds for r in results])
        rows.append((parts, sample_s, merge_s, sample_s + merge_s))
    return rows


def scaleup_experiment(scheme: str, *,
                       partition_size: int,
                       scale_factors: Sequence[int],
                       bound_values: int,
                       rng: SplittableRng,
                       distributions: Sequence[str] = ("unique", "uniform",
                                                       "zipfian"),
                       repeats: int = 3
                       ) -> List[Tuple[int, str, float]]:
    """Figures 12-14: cost vs scale factor at fixed per-partition size.

    Scale factor ``s`` means ``s`` partitions of ``partition_size``
    elements each (population and parallelism grow together).  The
    reported time is elapsed under per-partition parallelism (constant
    sampling stage) plus the serial merges (linear in ``s``), so linear
    scaleup shows as cost roughly linear in ``s``.
    """
    rows = []
    for dist in distributions:
        for scale in scale_factors:
            scenario = Scenario(dist, partition_size * scale, scale)
            results = repeat_pipeline(
                scenario, scheme,
                bound_values=bound_values,
                rng=rng.spawn("scaleup", scheme, dist, scale),
                repeats=repeats)
            rows.append((scale, dist,
                         mean([r.elapsed_seconds for r in results])))
    return rows


def sample_size_experiment(scheme: str, *,
                           partition_size: int,
                           partition_counts: Sequence[int],
                           bound_values: int,
                           rng: SplittableRng,
                           distributions: Sequence[str] = ("uniform",
                                                           "unique"),
                           p_values: Sequence[float] = (0.001,),
                           repeats: int = 3
                           ) -> List[Tuple[int, str, float, float, float]]:
    """Figures 15-16: final merged sample size vs partition count.

    Rows are ``(partitions, distribution, p, mean_size, cv)`` where
    ``cv`` is the coefficient of variation over the repeats — the
    stability metric behind "smaller and less stable".  (The Zipfian
    population is omitted, as in the paper: its samples stay exhaustive.)
    """
    rows = []
    for dist in distributions:
        for p in p_values:
            for parts in partition_counts:
                scenario = Scenario(dist, partition_size * parts, parts)
                results = repeat_pipeline(
                    scenario, scheme,
                    bound_values=bound_values,
                    rng=rng.spawn("sizes", scheme, dist, p, parts),
                    exceedance_p=p,
                    repeats=repeats)
                sizes = [float(r.merged_size) for r in results]
                rows.append((parts, dist, p, mean(sizes),
                             coefficient_of_variation(sizes)))
    return rows


def concise_demo(*, trials: int = 2_000,
                 rng: Optional[SplittableRng] = None) -> Dict[str, int]:
    """Section 3.3: concise sampling's missing histogram.

    Returns occurrence counts for H1/H2/H3/other; a correct reproduction
    has ``H1 > 0``, ``H2 > 0`` and ``H3 == 0``.
    """
    rng = rng if rng is not None else SplittableRng()
    return concise_nonuniformity_demo(trials, rng)


def conclusions_check(*, population: int, partition_counts: Sequence[int],
                      partition_size: int, bound_values: int,
                      rng: SplittableRng,
                      repeats: int = 3) -> Dict[str, object]:
    """Section 5's four conclusions, evaluated on fresh measurements.

    1. HB and HR are within an order of magnitude of SB's sampling speed.
    2. Absolute throughput is acceptable (reported, not asserted —
       absolute numbers are hardware-bound).
    3. All three algorithms scale (cost roughly linear in scale factor).
    4. HR yields larger, more stable sample sizes than HB.
    """
    speed: Dict[str, List[Tuple[int, float, float, float]]] = {}
    for scheme in ("sb", "hb", "hr"):
        speed[scheme] = speedup_experiment(
            scheme, population=population,
            partition_counts=partition_counts,
            bound_values=bound_values,
            rng=rng.spawn("concl-speed", scheme), repeats=repeats)

    def best_total(scheme: str) -> float:
        return min(row[3] for row in speed[scheme])

    ratio_hb = best_total("hb") / best_total("sb")
    ratio_hr = best_total("hr") / best_total("sb")

    sizes = {}
    for scheme in ("hb", "hr"):
        rows = sample_size_experiment(
            scheme, partition_size=partition_size,
            partition_counts=partition_counts,
            bound_values=bound_values,
            rng=rng.spawn("concl-size", scheme),
            distributions=("uniform",), repeats=repeats)
        sizes[scheme] = rows

    hb_mean = mean([row[3] for row in sizes["hb"]])
    hr_mean = mean([row[3] for row in sizes["hr"]])
    hb_cv = mean([row[4] for row in sizes["hb"]])
    hr_cv = mean([row[4] for row in sizes["hr"]])

    return {
        "speed_ratio_hb_over_sb": ratio_hb,
        "speed_ratio_hr_over_sb": ratio_hr,
        "within_order_of_magnitude": ratio_hb <= 10.0 and ratio_hr <= 30.0,
        "hb_mean_size": hb_mean,
        "hr_mean_size": hr_mean,
        "hr_larger_than_hb": hr_mean >= hb_mean,
        "hb_size_cv": hb_cv,
        "hr_size_cv": hr_cv,
        "hr_more_stable_than_hb": hr_cv <= hb_cv,
        "speedup_tables": speed,
        "size_tables": sizes,
    }

"""Benchmark harness: the partition -> parallel-sample -> serial-merge
pipeline of Section 5, figure-reproduction drivers, and table printing."""

from repro.bench.harness import PipelineResult, repeat_pipeline, run_pipeline
from repro.bench.report import format_table, print_table

__all__ = [
    "run_pipeline",
    "repeat_pipeline",
    "PipelineResult",
    "format_table",
    "print_table",
]

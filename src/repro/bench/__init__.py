"""Benchmark harness: the partition -> parallel-sample -> serial-merge
pipeline of Section 5, figure-reproduction drivers, table printing, the
:func:`wall_timer` every benchmark script times with, and the pinned
regression suite behind ``repro bench run`` / ``--compare``."""

from repro.bench.harness import PipelineResult, repeat_pipeline, run_pipeline
from repro.bench.regression import (BenchResult, compare_reports,
                                    load_report, run_core_suite,
                                    run_merge_suite, validate_report,
                                    write_report)
from repro.bench.report import format_table, print_table
from repro.bench.timing import WallTimer, wall_timer

__all__ = [
    "run_pipeline",
    "repeat_pipeline",
    "PipelineResult",
    "format_table",
    "print_table",
    "WallTimer",
    "wall_timer",
    "BenchResult",
    "run_core_suite",
    "run_merge_suite",
    "validate_report",
    "load_report",
    "write_report",
    "compare_reports",
]

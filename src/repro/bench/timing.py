"""The bench package's wall-clock timer.

Benchmarks are the one place outside ``repro.obs`` allowed to read
clocks directly (lint rule RPR081); everything they time should still
go through one front so scripts agree on the clock and the idiom::

    from repro.bench import wall_timer

    with wall_timer() as t:
        expensive_call()
    print(t.seconds)

The timer reads ``time.perf_counter`` — monotonic, high resolution,
and the same clock ``repro.obs.clock.monotonic`` wraps — so bench
numbers and obs ``*.seconds`` histograms are directly comparable.
"""

from __future__ import annotations

import time

__all__ = ["WallTimer", "wall_timer"]


class WallTimer:
    """Context manager measuring the wall time of its ``with`` block.

    ``seconds`` is ``0.0`` until the block exits, then holds the
    elapsed wall time.  Re-entering restarts the measurement.
    """

    __slots__ = ("seconds", "_start")

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start


def wall_timer() -> WallTimer:
    """A fresh :class:`WallTimer` (the spelling benchmarks should use)."""
    return WallTimer()

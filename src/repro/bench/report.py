"""ASCII table/series rendering for the figure-reproduction benches.

The paper's evaluation is all charts; our benches print the underlying
series as aligned text tables so "the same rows/series the paper reports"
appear in the bench output and in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.errors import ConfigurationError

__all__ = ["format_table", "print_table", "format_cell"]


def format_cell(value: object) -> str:
    """Render one cell: floats get 4 significant digits, rest ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]], *,
                 title: str = "") -> str:
    """Render an aligned ASCII table.

    Examples
    --------
    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a | b
    --+----
    1 | 2.5
    """
    str_rows: List[List[str]] = [[format_cell(c) for c in row]
                                 for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells for {len(headers)} headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths))
                 .rstrip())
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths))
                     .rstrip())
    return "\n".join(lines)


def print_table(headers: Sequence[str],
                rows: Iterable[Sequence[object]], *,
                title: str = "") -> None:
    """Print :func:`format_table` output (with a leading blank line)."""
    print()
    print(format_table(headers, rows, title=title))

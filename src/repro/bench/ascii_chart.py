"""ASCII charts for terminal-rendered figure reproductions.

The paper's evaluation is bar and line charts; the bench suite prints
the underlying series as tables, and this module renders them visually
for terminals and monospace docs:

* :func:`bar_chart` — horizontal bars with labels and values (used for
  the speedup figures' stacked sample/merge costs);
* :func:`stacked_bar_chart` — two-segment horizontal bars (the paper's
  light sample-time + dark merge-time bars);
* :func:`line_chart` — a dot-matrix plot of one or more series over a
  shared x axis (the scaleup and sample-size figures).

Pure text in, pure text out; no terminal-control sequences, so output
can be pasted into Markdown code blocks.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["bar_chart", "stacked_bar_chart", "line_chart"]


def _format_value(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1000 or abs(v) < 0.01:
        return f"{v:.2e}"
    return f"{v:.3g}"


def bar_chart(rows: Sequence[Tuple[str, float]], *,
              width: int = 50, title: str = "") -> str:
    """Horizontal bar chart: ``(label, value)`` rows.

    Examples
    --------
    >>> print(bar_chart([("a", 2.0), ("b", 4.0)], width=4))
    a | ##   2
    b | #### 4
    """
    if not rows:
        raise ConfigurationError("bar_chart needs at least one row")
    if width <= 0:
        raise ConfigurationError(f"width must be positive, got {width}")
    peak = max(v for _l, v in rows)
    if peak < 0:
        raise ConfigurationError("bar values must be non-negative")
    label_w = max(len(l) for l, _v in rows)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in rows:
        if value < 0:
            raise ConfigurationError("bar values must be non-negative")
        bar = "#" * (round(width * value / peak) if peak > 0 else 0)
        lines.append(f"{label.ljust(label_w)} | {bar.ljust(width)} "
                     f"{_format_value(value)}")
    return "\n".join(lines)


def stacked_bar_chart(rows: Sequence[Tuple[str, float, float]], *,
                      width: int = 50, title: str = "",
                      legend: Tuple[str, str] = ("sample", "merge")
                      ) -> str:
    """Two-segment bars: ``(label, first, second)`` rows.

    The first segment renders as ``#`` (the paper's light bars), the
    second as ``%`` (dark bars); the printed value is the total.
    """
    if not rows:
        raise ConfigurationError("stacked_bar_chart needs rows")
    if width <= 0:
        raise ConfigurationError(f"width must be positive, got {width}")
    peak = max(a + b for _l, a, b in rows)
    label_w = max(len(l) for l, _a, _b in rows)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{''.ljust(label_w)}   # = {legend[0]}, % = {legend[1]}")
    for label, first, second in rows:
        if first < 0 or second < 0:
            raise ConfigurationError("bar values must be non-negative")
        total = first + second
        if peak > 0:
            first_w = round(width * first / peak)
            total_w = round(width * total / peak)
        else:
            first_w = total_w = 0
        bar = "#" * first_w + "%" * max(0, total_w - first_w)
        lines.append(f"{label.ljust(label_w)} | {bar.ljust(width)} "
                     f"{_format_value(total)}")
    return "\n".join(lines)


def line_chart(series: Dict[str, Sequence[Tuple[float, float]]], *,
               width: int = 60, height: int = 16, title: str = "",
               logy: bool = False) -> str:
    """Dot-matrix line chart of named ``(x, y)`` series.

    Each series gets a distinct plotting glyph; a legend follows the
    plot.  ``logy=True`` plots log10(y) (the paper's scaleup figures
    use a log seconds axis) — y values must then be positive.
    """
    if not series:
        raise ConfigurationError("line_chart needs at least one series")
    if width <= 2 or height <= 2:
        raise ConfigurationError("chart must be at least 3x3")
    glyphs = "*o+x@^"
    points: List[Tuple[float, float, str]] = []
    for idx, (name, pts) in enumerate(series.items()):
        if not pts:
            raise ConfigurationError(f"series {name!r} is empty")
        glyph = glyphs[idx % len(glyphs)]
        for x, y in pts:
            if logy:
                if y <= 0:
                    raise ConfigurationError(
                        f"logy needs positive values; {name!r} has {y}")
                y = math.log10(y)
            points.append((float(x), float(y), glyph))

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, glyph in points:
        col = round((x - x_lo) / x_span * (width - 1))
        row = round((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = glyph

    y_hi_label = _format_value(10 ** y_hi if logy else y_hi)
    y_lo_label = _format_value(10 ** y_lo if logy else y_lo)
    margin = max(len(y_hi_label), len(y_lo_label))

    lines: List[str] = []
    if title:
        lines.append(title)
    for i, row_cells in enumerate(grid):
        if i == 0:
            label = y_hi_label.rjust(margin)
        elif i == height - 1:
            label = y_lo_label.rjust(margin)
        else:
            label = " " * margin
        lines.append(f"{label} |{''.join(row_cells)}")
    lines.append(f"{' ' * margin} +{'-' * width}")
    x_axis = (f"{_format_value(x_lo)}".ljust(width // 2)
              + f"{_format_value(x_hi)}".rjust(width - width // 2))
    lines.append(f"{' ' * margin}  {x_axis}")
    legend = "   ".join(f"{glyphs[i % len(glyphs)]} {name}"
                        for i, name in enumerate(series))
    lines.append(f"{' ' * margin}  {legend}")
    if logy:
        lines.append(f"{' ' * margin}  (log y axis)")
    return "\n".join(lines)

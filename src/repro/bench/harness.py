"""The Section 5 experimental pipeline.

"We partition a data set and observe the behavior of the various
algorithms as they sample each partition (in parallel) and then execute a
sequence of pairwise merges (serially) to create a uniform sample of the
entire data set."

:func:`run_pipeline` executes exactly that for one scenario and scheme,
separately timing the **sampling** stage (summed over partitions — the
paper's clusters report total CPU cost, which parallelism redistributes
but does not reduce) and the **merge** stage (serial pairwise folds).
:func:`repeat_pipeline` averages over independent repetitions ("all
reported numbers represent an average over three independent and
identical experiments").

Pass ``collect_metrics=True`` to observe a run: the pipeline executes
inside :func:`repro.obs.capture`, and the result carries the metrics
snapshot (every counter/gauge/histogram the instrumented hot paths
emitted — see ``docs/observability.md``) plus the span trace, so a
benchmark can report *why* a configuration is slow, not just that it is.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

from repro.core.merge import merge_tree
from repro.core.sample import WarehouseSample
from repro.errors import ConfigurationError
from repro.obs.runtime import capture
from repro.obs.tracing import span
from repro.rng import SplittableRng
from repro.warehouse.parallel import make_sampler
from repro.workloads.scenarios import Scenario

__all__ = ["PipelineResult", "run_pipeline", "repeat_pipeline"]


@dataclass(frozen=True)
class PipelineResult:
    """Timings and outputs of one partition/sample/merge pipeline run."""

    scenario: Scenario
    scheme: str
    partition_sample_seconds: Sequence[float]
    merge_seconds: float
    partition_sample_sizes: Sequence[int]
    merged: WarehouseSample
    #: Metrics snapshot of the run (``collect_metrics=True`` only).
    metrics: Optional[dict] = field(default=None, compare=False)
    #: Finished spans of the run as dicts (``collect_metrics=True`` only).
    trace: Optional[List[dict]] = field(default=None, compare=False)

    @property
    def sample_seconds(self) -> float:
        """Total sampling CPU time, summed over partitions."""
        return sum(self.partition_sample_seconds)

    @property
    def sample_seconds_parallel(self) -> float:
        """Idealized fully-parallel sampling *elapsed* time.

        One worker per partition — the regime the paper's speedup
        figures chart (their light "Sample Time" bars shrink as the
        partition count rises): elapsed sampling time is the slowest
        single partition.
        """
        return max(self.partition_sample_seconds)

    @property
    def total_seconds(self) -> float:
        """Total CPU: all sampling plus merging."""
        return self.sample_seconds + self.merge_seconds

    @property
    def elapsed_seconds(self) -> float:
        """Idealized elapsed: parallel sampling + serial merging."""
        return self.sample_seconds_parallel + self.merge_seconds

    @property
    def merged_size(self) -> int:
        """Data elements in the final merged sample."""
        return self.merged.size


def _default_sb_rate(scenario: Scenario, bound_values: int) -> float:
    """SB rate giving an expected final sample of ``bound_values``.

    The paper does not state SB's rate; matching the hybrid algorithms'
    sample budget makes the speed comparison apples-to-apples.
    """
    return min(1.0, bound_values / scenario.population_size)


def run_pipeline(scenario: Scenario, scheme: str, *,
                 bound_values: int,
                 rng: SplittableRng,
                 exceedance_p: float = 0.001,
                 sb_rate: Optional[float] = None,
                 merge_mode: str = "serial",
                 arrival_mode: str = "stream",
                 collect_metrics: bool = False) -> PipelineResult:
    """Run one scenario through one algorithm; time sampling and merging.

    Data generation happens *before* the clocks start, so timings cover
    only sampling and merging (the quantities Figures 9-14 chart).

    ``arrival_mode`` controls how values reach the samplers:

    * ``"stream"`` (default, the paper's regime) — one ``feed`` call per
      element, charging the per-arrival inspection cost every real
      ingest pipeline pays; per-partition cost is then proportional to
      partition size, which is what makes parallel sampling time fall
      as partitions are added (the figures' light bars).
    * ``"batch"`` — the library's skip-based ``feed_many`` fast path,
      which jumps over excluded elements of an in-memory sequence; use
      it to measure the fast path itself.

    ``collect_metrics=True`` runs the pipeline under
    :func:`repro.obs.capture` and attaches the metrics snapshot and
    span trace to the result.  Sampler randomness is untouched by
    instrumentation, so timings aside, the run is identical.
    """
    if collect_metrics:
        with capture() as (registry, ring):
            result = _run_pipeline(scenario, scheme,
                                   bound_values=bound_values, rng=rng,
                                   exceedance_p=exceedance_p,
                                   sb_rate=sb_rate, merge_mode=merge_mode,
                                   arrival_mode=arrival_mode)
        return replace(result, metrics=registry.snapshot(),
                       trace=[s.to_dict() for s in ring.spans])
    return _run_pipeline(scenario, scheme, bound_values=bound_values,
                         rng=rng, exceedance_p=exceedance_p,
                         sb_rate=sb_rate, merge_mode=merge_mode,
                         arrival_mode=arrival_mode)


def _run_pipeline(scenario: Scenario, scheme: str, *,
                  bound_values: int,
                  rng: SplittableRng,
                  exceedance_p: float = 0.001,
                  sb_rate: Optional[float] = None,
                  merge_mode: str = "serial",
                  arrival_mode: str = "stream") -> PipelineResult:
    if scheme == "sb" and sb_rate is None:
        sb_rate = _default_sb_rate(scenario, bound_values)
    chunks = scenario.partition_values(rng)

    samples: List[WarehouseSample] = []
    partition_seconds: List[float] = []
    for i, chunk in enumerate(chunks):
        sampler = make_sampler(
            scheme,
            population_size=len(chunk),
            bound_values=bound_values,
            exceedance_p=exceedance_p,
            sb_rate=sb_rate,
            rng=rng.spawn("part", scenario.label(), scheme, i),
        )
        with span("bench.partition", index=i, size=len(chunk)):
            start = time.perf_counter()
            if arrival_mode == "stream":
                feed = sampler.feed
                for value in chunk:
                    feed(value)
            else:
                sampler.feed_many(chunk)
            samples.append(sampler.finalize())
            partition_seconds.append(time.perf_counter() - start)

    start = time.perf_counter()
    merged = merge_tree(samples,
                        rng=rng.spawn("merge", scenario.label(), scheme),
                        mode=merge_mode)
    merge_seconds = time.perf_counter() - start

    return PipelineResult(
        scenario=scenario,
        scheme=scheme,
        partition_sample_seconds=partition_seconds,
        merge_seconds=merge_seconds,
        partition_sample_sizes=[s.size for s in samples],
        merged=merged,
    )


def repeat_pipeline(scenario: Scenario, scheme: str, *,
                    bound_values: int,
                    rng: SplittableRng,
                    repeats: int = 3,
                    exceedance_p: float = 0.001,
                    sb_rate: Optional[float] = None,
                    merge_mode: str = "serial",
                    arrival_mode: str = "stream") -> List[PipelineResult]:
    """Independent repetitions of :func:`run_pipeline` (paper uses 3)."""
    if repeats <= 0:
        raise ConfigurationError(f"repeats must be positive, got {repeats}")
    return [
        run_pipeline(scenario, scheme,
                     bound_values=bound_values,
                     rng=rng.spawn("repeat", r),
                     exceedance_p=exceedance_p,
                     sb_rate=sb_rate,
                     merge_mode=merge_mode,
                     arrival_mode=arrival_mode)
        for r in range(repeats)
    ]

"""The versioned merge-result cache.

Merge-on-demand is the expensive step of a query (Figure 8's tree over
every selected partition), and most serving workloads ask the same
question repeatedly between ingests.  The cache keys each merged
sample on ``(dataset, selector, version)`` where *version* is the
dataset's :class:`~repro.serve.occ.VersionedCatalog` tag:

* a **hit** requires the caller's current version to equal the tag the
  entry was computed under — an entry can never outlive the catalog
  state it summarizes, which is the no-stale-serves contract the
  hypothesis property test hammers;
* any catalog mutation bumps the tag, so every older entry is
  unreachable immediately; :meth:`invalidate` additionally garbage-
  collects them.

Capacity is LRU-bounded.  With a spill store attached (a
:class:`~repro.warehouse.storage.FileStore` opened with
``durability="relaxed"`` — cache entries are recomputable, so fsync
per spill would buy nothing), evicted entries move to disk and can be
re-promoted on a later hit.  Spill files get synthetic partition keys
under ``<dataset>.cache``; a unique per-store sequence number keeps
distinct selectors from ever aliasing one file, and an in-memory index
maps the exact selector back, so a spill hit is as collision-proof as
a memory hit.

Thread-safety: the service calls into the cache from pool threads (the
query op runs lookup → merge → store as one blocking unit), so all
index state is mutated under ``self._lock``; spill file I/O happens
outside it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.core.sample import WarehouseSample
from repro.errors import (ConfigurationError, PartitionNotFoundError,
                          StorageError)
from repro.obs.runtime import OBS
from repro.rng import stable_hash
from repro.warehouse.dataset import PartitionKey

__all__ = ["MergeCache"]

_CacheKey = Tuple[str, str]          # (dataset, selector)
_Entry = Tuple[int, WarehouseSample]  # (version, merged sample)


class MergeCache:
    """LRU cache of merged samples, keyed on dataset version tags."""

    def __init__(self, *, max_entries: int = 128,
                 spill_store=None) -> None:
        if max_entries <= 0:
            raise ConfigurationError(
                f"max_entries must be positive, got {max_entries}")
        self._max = max_entries
        self._spill_store = spill_store
        self._entries: "OrderedDict[_CacheKey, _Entry]" = OrderedDict()
        self._spilled: Dict[_CacheKey, Tuple[int, PartitionKey]] = {}
        self._spill_seq = 0
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, dataset: str, selector: str,
            version: int) -> Optional[WarehouseSample]:
        """The cached merge for this selector **at this version**.

        Returns ``None`` (a miss) when there is no entry or the entry
        was computed under a different version; stale entries found on
        the way are dropped.  A miss in memory consults the spill
        store and re-promotes on success.
        """
        cache_key = (dataset, selector)
        spilled = None
        with self._lock:
            entry = self._entries.get(cache_key)
            if entry is not None:
                if entry[0] == version:
                    self._entries.move_to_end(cache_key)
                    if OBS.enabled:
                        OBS.registry.counter("serve.cache.hit").inc()
                    return entry[1]
                del self._entries[cache_key]  # stale: unreachable anyway
            spilled = self._spilled.get(cache_key)
        if spilled is not None and spilled[0] == version \
                and self._spill_store is not None:
            try:
                sample = self._spill_store.get(spilled[1])
            except (PartitionNotFoundError, StorageError):
                sample = None  # relaxed durability: losing a spill is fine
            if sample is not None:
                if OBS.enabled:
                    OBS.registry.counter("serve.cache.hit").inc()
                self.put(dataset, selector, version, sample)
                return sample
        if OBS.enabled:
            OBS.registry.counter("serve.cache.miss").inc()
        return None

    def put(self, dataset: str, selector: str, version: int,
            sample: WarehouseSample) -> None:
        """Store a merge computed under ``version``; evict LRU excess."""
        cache_key = (dataset, selector)
        evicted = None
        with self._lock:
            self._entries[cache_key] = (version, sample)
            self._entries.move_to_end(cache_key)
            if len(self._entries) > self._max:
                evicted = self._entries.popitem(last=False)
        if evicted is not None and self._spill_store is not None:
            self._spill(evicted[0], evicted[1])

    def _spill(self, cache_key: _CacheKey, entry: _Entry) -> None:
        dataset, selector = cache_key
        version, sample = entry
        with self._lock:
            seq = self._spill_seq
            self._spill_seq += 1
            # The stream field carries the selector hash purely for
            # debuggability of the spill directory; uniqueness comes
            # from the sequence number, so selectors can never alias
            # a file.
            key = PartitionKey(dataset + ".cache",
                               stream=stable_hash(selector) % (2 ** 31),
                               seq=seq)
            # Reserve the slot before any I/O: a concurrent spill of
            # the same cache_key then sees this key as its `previous`
            # and GCs it, so no successful spill file can end up on
            # disk unreferenced.
            previous = self._spilled.get(cache_key)
            self._spilled[cache_key] = (version, key)
        try:
            self._spill_store.put(key, sample)
        except StorageError:
            # A failed spill only loses a recomputable entry; withdraw
            # the reservation (unless a later spill already replaced
            # it) so get() stops consulting a file that never landed,
            # and put the previous spill back — its file is still good.
            with self._lock:
                if self._spilled.get(cache_key) == (version, key):
                    if previous is not None:
                        self._spilled[cache_key] = previous
                        previous = None  # restored: keep its file
                    else:
                        del self._spilled[cache_key]
        else:
            with self._lock:
                superseded = self._spilled.get(cache_key) != (version, key)
            if superseded:
                # A racing spill (or invalidate) took the slot while we
                # wrote; our file is unreachable, so drop it ourselves.
                self._drop_spill_file(key)
            elif OBS.enabled:
                OBS.registry.counter("serve.cache.spill").inc()
        if previous is not None:
            self._drop_spill_file(previous[1])

    def _drop_spill_file(self, key: PartitionKey) -> None:
        try:
            self._spill_store.delete(key)
        except (PartitionNotFoundError, StorageError):
            pass  # best-effort GC; unreachable files are merely dead weight

    def invalidate(self, dataset: str) -> int:
        """Garbage-collect every entry of a mutated dataset.

        Correctness never depends on this — version-tag mismatches
        already make stale entries unhittable — but dropping them
        promptly frees memory and spill files.  Returns how many
        entries (memory + spilled) were dropped.
        """
        with self._lock:
            dead = [k for k in self._entries if k[0] == dataset]
            for k in dead:
                del self._entries[k]
            dead_spills = [(k, v) for k, v in self._spilled.items()
                           if k[0] == dataset]
            for k, _ in dead_spills:
                del self._spilled[k]
        if self._spill_store is not None:
            for _, (_, key) in dead_spills:
                self._drop_spill_file(key)
        return len(dead) + len(dead_spills)

"""Admission control: bounded concurrency with queue-depth shedding.

The service bounds the work it accepts rather than the work it is
offered.  A semaphore caps requests actually executing; arrivals
beyond that wait in a bounded queue; arrivals beyond *that* are shed
immediately with :class:`~repro.errors.OverloadedError` (HTTP 503 +
``Retry-After``), which is both cheaper and more honest than letting
latency grow without bound.  Shedding at the door keeps the p99 of
admitted requests flat under overload — the property the loadtest's
shed-rate column exists to show.

Event-loop confined: all counters and the semaphore are touched only
from coroutines, so no lock is needed (and none is taken).
"""

from __future__ import annotations

import asyncio

from repro.errors import ConfigurationError, OverloadedError
from repro.obs.runtime import OBS

__all__ = ["AdmissionController"]


class AdmissionController:
    """``async with`` gate: admit, queue, or shed each request."""

    def __init__(self, *, max_concurrent: int = 64, max_queue: int = 256,
                 retry_after: float = 0.5) -> None:
        if max_concurrent <= 0:
            raise ConfigurationError(
                f"max_concurrent must be positive, got {max_concurrent}")
        if max_queue < 0:
            raise ConfigurationError(
                f"max_queue must be >= 0, got {max_queue}")
        if retry_after <= 0:
            raise ConfigurationError(
                f"retry_after must be positive, got {retry_after}")
        self._max_queue = max_queue
        self._retry_after = retry_after
        self._semaphore = asyncio.Semaphore(max_concurrent)
        self._waiting = 0
        self._inflight = 0

    @property
    def inflight(self) -> int:
        """Requests currently admitted and executing."""
        return self._inflight

    @property
    def waiting(self) -> int:
        """Requests queued for a slot."""
        return self._waiting

    async def __aenter__(self) -> "AdmissionController":
        # Shed only requests that would actually have to queue: a free
        # semaphore slot admits immediately even with max_queue=0.
        if self._semaphore.locked() and self._waiting >= self._max_queue:
            if OBS.enabled:
                OBS.registry.counter("serve.shed").inc()
            raise OverloadedError(
                f"queue full ({self._waiting} waiting); "
                f"retry in {self._retry_after}s",
                retry_after=self._retry_after)
        self._waiting += 1
        try:
            await self._semaphore.acquire()
        finally:
            # Balanced counter, loop-confined: the increment above and
            # this decrement bracket the await, but every mutation runs
            # on the single loop thread and interleaved tasks only ever
            # read a conservative (momentarily higher) queue depth for
            # the shed heuristic — an asyncio.Lock here would serialize
            # admission itself.
            self._waiting -= 1  # repro: noqa[RPR113]
        self._inflight += 1
        if OBS.enabled:
            OBS.registry.gauge("serve.inflight").set(self._inflight)
        return self

    async def __aexit__(self, *exc_info) -> None:
        self._inflight -= 1
        self._semaphore.release()
        if OBS.enabled:
            OBS.registry.gauge("serve.inflight").set(self._inflight)

"""Optimistic concurrency control over catalog mutations.

The service runs catalog mutations (ingest, roll-out, roll-in) on pool
threads, so two clients can race.  Instead of exposing long-held locks
to clients, every dataset carries a monotonically increasing **version
tag**; a mutation is a compare-and-swap: the client states the version
it based its decision on (``If-Match`` / ``expected_version``), the
swap applies only if that is still current, and a mismatch fails fast
with HTTP 409 (:class:`~repro.errors.VersionConflictError`) so the
client re-reads and retries.  Reads are versioned snapshots: the
merge-result cache (:mod:`repro.serve.cache`) keys on the tag, which is
what makes "never serve a stale merge" checkable.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional, Tuple, TypeVar

from repro.errors import VersionConflictError
from repro.obs.runtime import OBS

__all__ = ["VersionedCatalog"]

T = TypeVar("T")


class VersionedCatalog:
    """Per-dataset version tags with compare-and-swap mutation.

    The wrapped mutation function runs *inside* the version lock: the
    version check, the catalog/store mutation, and the version bump
    must be one atomic step, or a concurrent reader could observe the
    new catalog under the old tag (exactly the staleness the tag
    exists to rule out).  Mutations are in-memory catalog updates plus
    at most one sample-store write per partition, so the critical
    section is short; heavy work (sampling the ingested values) happens
    *before* entering :meth:`mutate`.
    """

    def __init__(self) -> None:
        self._versions: Dict[str, int] = {}
        self._lock = threading.Lock()

    def version(self, dataset: str) -> int:
        """The current tag for ``dataset`` (0 before any mutation)."""
        with self._lock:
            return self._versions.get(dataset, 0)

    def versions(self) -> Dict[str, int]:
        """A snapshot of every dataset's tag."""
        with self._lock:
            return dict(self._versions)

    def read(self, fn: Callable[[], T]) -> T:
        """Run an in-memory catalog read atomically w.r.t. mutations.

        For cheap snapshot reads only (listing partitions, catalog
        metadata) — never wrap storage I/O or merges in this; those
        belong in the optimistic read-validate loop of the query path.
        """
        with self._lock:
            return fn()

    def mutate(self, dataset: str, fn: Callable[[], T], *,
               expected: Optional[int] = None) -> Tuple[T, int]:
        """Compare-and-swap: run ``fn`` iff ``expected`` is current.

        Returns ``(fn(), new_version)``.  With ``expected=None`` the
        mutation is unconditional (still atomic, still bumps the tag).
        Raises :class:`~repro.errors.VersionConflictError` — and leaves
        the catalog untouched — when the tag has moved.
        """
        with self._lock:
            actual = self._versions.get(dataset, 0)
            if expected is not None and expected != actual:
                if OBS.enabled:
                    OBS.registry.counter("serve.occ.conflicts").inc()
                raise VersionConflictError(
                    f"dataset {dataset!r} is at version {actual}, "
                    f"not {expected}; re-read and retry",
                    expected=expected, actual=actual)
            # CAS critical section: the mutation must commit atomically
            # with the version check above and the bump below, even
            # though registering partitions into a FileStore blocks on
            # file I/O.  Contention is bounded by design — one short
            # store write per partition; the expensive sampling ran
            # before mutate() was entered.
            result = fn()  # repro: noqa[RPR103]
            self._versions[dataset] = actual + 1
            return result, actual + 1

"""Resilience primitives for the serving layer.

Two cooperating patterns protect the storage path of ``repro serve``:

* :class:`CircuitBreaker` — a closed/open/half-open state machine.
  Consecutive storage failures beyond a threshold *open* the circuit:
  further calls fail fast with
  :class:`~repro.errors.CircuitOpenError` instead of piling onto a
  struggling store.  After a recovery timeout the breaker admits a
  bounded number of *half-open* probes; one success closes it again,
  one failure re-opens it.
* :class:`RetryPolicy` — bounded retries with exponentially growing,
  jittered backoff ("full jitter": each delay is uniform on
  ``[0, base * multiplier**attempt]``, capped).  Jitter comes from an
  injected :class:`~repro.rng.SplittableRng`, so a test that seeds the
  policy can predict the entire backoff schedule exactly — see
  :func:`backoff_delays`.

Both take their clock from :mod:`repro.obs.clock` (the library's one
clock front), so failure-injection tests drive recovery timeouts with a
:class:`~repro.obs.clock.ManualClock` instead of sleeping.  The breaker
is deliberately **not** thread-safe: the service confines it to the
event loop (``allow``/``record_*`` run in coroutines, never on pool
threads), which keeps the state machine lock-free.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Iterator, Optional, Tuple, TypeVar

from repro.errors import (CircuitOpenError, ConfigurationError,
                          ProtocolError, StorageError)
from repro.obs.clock import monotonic
from repro.obs.runtime import OBS
from repro.rng import SplittableRng

__all__ = ["CLOSED", "OPEN", "HALF_OPEN", "CircuitBreaker",
           "RetryPolicy", "backoff_delays", "BREAKER_STATE_GAUGE"]

T = TypeVar("T")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Gauge encoding for ``serve.breaker.state`` (docs/observability.md):
#: healthy states are low, the tripped state is high.
BREAKER_STATE_GAUGE = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}


class CircuitBreaker:
    """Closed/open/half-open circuit breaker over a failing resource.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures (while closed) that open the circuit.
    recovery_seconds:
        How long an open circuit rejects calls before admitting
        half-open probes.
    half_open_max:
        Concurrent probes admitted while half-open (default 1).
    clock:
        Monotonic clock callable; tests inject a
        :class:`~repro.obs.clock.ManualClock`.

    Usage is three calls around the protected operation — every path
    out of an admitted call must report, or a half-open probe slot
    leaks::

        breaker.allow()           # raises CircuitOpenError when open
        try:
            result = do_storage_thing()
        except StorageError:
            breaker.record_failure()   # resource-health signal
            raise
        except Exception:
            breaker.record_neutral()   # no signal; free the slot
            raise
        breaker.record_success()
    """

    def __init__(self, *, failure_threshold: int = 5,
                 recovery_seconds: float = 2.0,
                 half_open_max: int = 1,
                 clock: Callable[[], float] = monotonic) -> None:
        if failure_threshold <= 0:
            raise ConfigurationError(
                f"failure_threshold must be positive, "
                f"got {failure_threshold}")
        if recovery_seconds <= 0:
            raise ConfigurationError(
                f"recovery_seconds must be positive, "
                f"got {recovery_seconds}")
        if half_open_max <= 0:
            raise ConfigurationError(
                f"half_open_max must be positive, got {half_open_max}")
        self._threshold = failure_threshold
        self._recovery = recovery_seconds
        self._half_open_max = half_open_max
        self._clock = clock
        self._state = CLOSED
        self._failures = 0          # consecutive failures while closed
        self._opened_at = 0.0       # clock reading of the last open
        self._probes = 0            # in-flight probes while half-open

    @property
    def state(self) -> str:
        """The stored state (transitions happen inside :meth:`allow`)."""
        return self._state

    def _transition(self, new_state: str) -> None:
        self._state = new_state
        if OBS.enabled:
            reg = OBS.registry
            reg.counter("serve.breaker.transitions").inc()
            reg.gauge("serve.breaker.state").set(
                BREAKER_STATE_GAUGE[new_state])

    def allow(self) -> None:
        """Admit one call, or raise :class:`CircuitOpenError`.

        While open, the raised error carries ``retry_after`` — the
        seconds left until the breaker will admit a half-open probe.
        """
        if self._state is OPEN:
            elapsed = self._clock() - self._opened_at
            if elapsed < self._recovery:
                raise CircuitOpenError(
                    "circuit open: storage is failing; "
                    f"retry in {self._recovery - elapsed:.3f}s",
                    retry_after=self._recovery - elapsed)
            self._probes = 0
            self._transition(HALF_OPEN)
        if self._state is HALF_OPEN:
            if self._probes >= self._half_open_max:
                raise CircuitOpenError(
                    "circuit half-open: probe quota in use",
                    retry_after=self._recovery)
            self._probes += 1

    def record_success(self) -> None:
        """The admitted call succeeded: heal."""
        self._failures = 0
        if self._state is HALF_OPEN:
            self._probes = 0
            self._transition(CLOSED)

    def record_neutral(self) -> None:
        """The admitted call ended without evidence about the resource.

        Client-caused errors (a version conflict, an unknown dataset)
        raised through a guarded call say nothing about storage
        health, but the probe slot :meth:`allow` handed out must still
        come back — otherwise one such outcome while half-open would
        pin ``probes`` at the quota with no time-based escape, and the
        breaker would reject every later call forever.
        """
        if self._state is HALF_OPEN and self._probes > 0:
            self._probes -= 1

    def record_failure(self) -> None:
        """The admitted call failed: count it, and trip if warranted."""
        if self._state is HALF_OPEN:
            # A failed probe re-opens immediately; the resource is
            # still down, so restart the full recovery wait.
            self._probes = 0
            self._opened_at = self._clock()
            self._transition(OPEN)
            return
        self._failures += 1
        if self._state is CLOSED and self._failures >= self._threshold:
            self._opened_at = self._clock()
            self._transition(OPEN)


def backoff_delays(*, attempts: int, base_delay: float,
                   multiplier: float, max_delay: float,
                   rng: SplittableRng) -> Iterator[float]:
    """The exact jittered backoff schedule a :class:`RetryPolicy` uses.

    Full jitter: delay *i* is ``rng.uniform(0, min(max_delay,
    base_delay * multiplier**i))``.  Exposed as a pure function of the
    rng so failure-injection tests can derive the expected schedule
    from an identically seeded :class:`~repro.rng.SplittableRng` and
    compare it against the sleeps the policy actually issued.
    """
    for attempt in range(attempts - 1):
        ceiling = min(max_delay, base_delay * multiplier ** attempt)
        yield rng.uniform(0.0, ceiling)


class RetryPolicy:
    """Bounded retry with jittered exponential backoff.

    Parameters
    ----------
    attempts:
        Total tries (1 = no retry).
    base_delay / multiplier / max_delay:
        Backoff shape; see :func:`backoff_delays`.
    rng:
        Jitter source.  The default is seeded fresh per policy; inject
        a seeded :class:`~repro.rng.SplittableRng` for a reproducible
        schedule.  This rng is operational only — it never touches any
        sampling decision, so warehouse results stay a pure function
        of the warehouse seed.
    sleep:
        Async sleep; tests inject :meth:`ManualClock.sleep
        <repro.obs.clock.ManualClock.sleep>` or a recorder.
    """

    def __init__(self, *, attempts: int = 3, base_delay: float = 0.02,
                 multiplier: float = 2.0, max_delay: float = 0.5,
                 rng: Optional[SplittableRng] = None,
                 sleep: Callable[[float], Awaitable[None]] = asyncio.sleep
                 ) -> None:
        if attempts <= 0:
            raise ConfigurationError(
                f"attempts must be positive, got {attempts}")
        if base_delay < 0 or max_delay < 0 or multiplier < 1.0:
            raise ConfigurationError(
                f"invalid backoff shape: base_delay={base_delay}, "
                f"multiplier={multiplier}, max_delay={max_delay}")
        self._attempts = attempts
        self._base = base_delay
        self._multiplier = multiplier
        self._max = max_delay
        self._rng = rng if rng is not None else SplittableRng()
        self._sleep = sleep

    async def call(self, fn: Callable[[], Awaitable[T]], *,
                   breaker: Optional[CircuitBreaker] = None,
                   retry_on: Tuple[type, ...] = (StorageError,)) -> T:
        """Run ``fn`` with retries, reporting outcomes to ``breaker``.

        Only ``retry_on`` exceptions consume attempts (and count as
        breaker failures); anything else — client errors like
        :class:`~repro.errors.ConfigurationError` or
        :class:`~repro.errors.VersionConflictError` — propagates
        immediately, releasing the admitted slot via
        :meth:`CircuitBreaker.record_neutral` (neither a success nor a
        failure: it says nothing about the resource, but a half-open
        probe must not leak).  A :class:`CircuitOpenError` from
        ``breaker.allow()`` also propagates immediately: once the
        circuit trips mid-retry, further attempts would only be
        rejected anyway.
        """
        delays = backoff_delays(
            attempts=self._attempts, base_delay=self._base,
            multiplier=self._multiplier, max_delay=self._max,
            rng=self._rng)
        for attempt in range(self._attempts):
            if breaker is not None:
                breaker.allow()
            try:
                result = await fn()
            except retry_on:
                if breaker is not None:
                    breaker.record_failure()
                if attempt + 1 >= self._attempts:
                    raise
                if OBS.enabled:
                    OBS.registry.counter("serve.retry.attempts").inc()
                await self._sleep(next(delays))
            except BaseException:
                if breaker is not None:
                    breaker.record_neutral()
                raise
            else:
                if breaker is not None:
                    breaker.record_success()
                return result
        raise ProtocolError(
            "retry loop exhausted without raising")  # pragma: no cover

"""The serving layer: the warehouse behind an asyncio HTTP front.

The paper frames the sample warehouse as infrastructure that answers
approximate queries *on demand*; this package is that service front
(ROADMAP item 2).  ``repro serve`` exposes ingest, merge-on-demand
sample retrieval, estimates, and roll-in/roll-out over HTTP
(stdlib-only transport), hardened with the standard serving patterns:

* versioned merge-result **cache** (:mod:`repro.serve.cache`),
* **admission control** with queue-depth shedding
  (:mod:`repro.serve.admission`),
* **circuit breaker** + jittered-backoff **retry** around storage
  (:mod:`repro.serve.resilience`),
* **optimistic concurrency** on catalog mutations
  (:mod:`repro.serve.occ`).

``repro loadtest`` (:mod:`repro.serve.loadtest`) measures the result.
Endpoint and semantics reference: ``docs/serving.md``.
"""

from repro.serve.admission import AdmissionController
from repro.serve.app import (DEFAULT_HOST, DEFAULT_PORT, ServeConfig,
                             WarehouseService)
from repro.serve.cache import MergeCache
from repro.serve.http import Request, Response
from repro.serve.occ import VersionedCatalog
from repro.serve.resilience import (CLOSED, HALF_OPEN, OPEN,
                                    CircuitBreaker, RetryPolicy,
                                    backoff_delays)

__all__ = [
    "WarehouseService",
    "ServeConfig",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "AdmissionController",
    "MergeCache",
    "VersionedCatalog",
    "CircuitBreaker",
    "RetryPolicy",
    "backoff_delays",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "Request",
    "Response",
]

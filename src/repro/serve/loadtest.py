"""The ``repro loadtest`` harness: N concurrent simulated clients.

Drives a running (or self-hosted) :class:`WarehouseService` with a
deterministic operation mix — mostly merge-on-demand queries, a trickle
of ingests so version tags move — and reports the latency distribution
(p50/p99), throughput, and shed rate.  The numbers land in
``BENCH_serve.json`` (schema ``repro-bench/1`` plus a ``serve`` block;
see :func:`repro.bench.regression.run_serve_suite`), which
``repro bench --compare`` gates like any other suite.

Determinism caveat: the *workload* is a pure function of the seed
(every client's op sequence derives from ``rng.spawn("client", i)``),
but latencies are wall-clock measurements — only the shape of the run
reproduces, not the timings.  Each request opens its own connection,
matching the transport's one-request-per-connection contract.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.clock import monotonic
from repro.rng import SplittableRng

__all__ = ["run_loadtest", "run_self_hosted", "summarize",
           "percentile"]

#: Fraction of requests that are ingests (the rest are queries).
_INGEST_FRACTION = 0.05
#: Values per simulated ingest batch.
_INGEST_VALUES = 64


def percentile(latencies: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty latency list."""
    if not latencies:
        raise ConfigurationError("no latencies to summarize")
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"q must be in [0, 1], got {q}")
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


async def _request(host: str, port: int, method: str, path: str,
                   body: Optional[dict] = None) -> Tuple[int, dict]:
    """One request over a fresh connection; returns (status, payload)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = b"" if body is None else \
            json.dumps(body, sort_keys=True).encode("utf-8")
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head + payload)
        await writer.drain()
        raw = await reader.read(-1)  # server closes after one response
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    try:
        status = int(raw.split(b" ", 2)[1])
        body_bytes = raw.split(b"\r\n\r\n", 1)[1]
        return status, json.loads(body_bytes.decode("utf-8"))
    except (IndexError, ValueError) as exc:
        raise ConfigurationError(
            f"malformed response from {host}:{port}: {exc}") from exc


def _client_ops(rng: SplittableRng, dataset: str,
                requests: int) -> List[Tuple[str, str, Optional[dict]]]:
    """One client's deterministic op sequence."""
    ops: List[Tuple[str, str, Optional[dict]]] = []
    for _ in range(requests):
        roll = rng.random()
        if roll < _INGEST_FRACTION:
            values = [rng.randrange(100_000)
                      for _ in range(_INGEST_VALUES)]
            ops.append(("POST", f"/datasets/{dataset}/ingest",
                        {"values": values, "partitions": 1}))
        elif roll < 0.5 + _INGEST_FRACTION / 2:
            ops.append(("GET", f"/datasets/{dataset}/sample", None))
        else:
            stat = ("avg", "sum", "count")[rng.randrange(3)]
            ops.append(("GET",
                        f"/datasets/{dataset}/estimate?stat={stat}",
                        None))
    return ops


async def _client(host: str, port: int,
                  ops: Sequence[Tuple[str, str, Optional[dict]]],
                  records: List[Tuple[float, int]]) -> None:
    for method, path, body in ops:
        t0 = monotonic()
        try:
            status, _payload = await _request(host, port, method, path,
                                              body)
        except (ConnectionError, OSError, ConfigurationError):
            records.append((monotonic() - t0, -1))
            continue
        records.append((monotonic() - t0, status))


def summarize(records: Sequence[Tuple[float, int]], *,
              wall_seconds: float, clients: int,
              requests_per_client: int) -> dict:
    """The ``serve`` summary block of ``BENCH_serve.json``."""
    if not records:
        raise ConfigurationError("loadtest produced no records")
    latencies = [lat for lat, status in records if 0 < status < 500]
    statuses: Dict[str, int] = {}
    for _, status in records:
        key = str(status) if status > 0 else "transport-error"
        statuses[key] = statuses.get(key, 0) + 1
    shed = statuses.get("503", 0)
    # Shedding is deliberate backpressure, not failure: errors count
    # transport breakage and server-side 5xx other than 503.
    errors = sum(n for s, n in statuses.items()
                 if s == "transport-error" or (s.isdigit()
                                               and int(s) >= 500
                                               and s != "503"))
    total = len(records)
    return {
        "clients": clients,
        "requests_per_client": requests_per_client,
        "total_requests": total,
        "completed": len(latencies),
        "shed": shed,
        "shed_rate": shed / total,
        "errors": errors,
        "statuses": statuses,
        "wall_seconds": wall_seconds,
        "throughput_rps": total / wall_seconds if wall_seconds > 0
        else 0.0,
        "latency": {
            "p50": percentile(latencies, 0.50),
            "p90": percentile(latencies, 0.90),
            "p99": percentile(latencies, 0.99),
            "max": max(latencies),
            "mean": sum(latencies) / len(latencies),
        } if latencies else None,
    }


async def run_loadtest(host: str, port: int, *, clients: int,
                       requests_per_client: int, seed: int,
                       dataset: str = "load.demo",
                       preload_values: int = 0) -> dict:
    """Run the client fleet against a listening service.

    ``preload_values > 0`` first ingests that many values into
    ``dataset`` over HTTP (untimed), so a fresh remote server has
    partitions to merge before the fleet's queries arrive.
    """
    if clients <= 0 or requests_per_client <= 0:
        raise ConfigurationError(
            f"clients and requests_per_client must be positive, got "
            f"{clients} and {requests_per_client}")
    rng = SplittableRng(seed)
    if preload_values > 0:
        status, payload = await _request(
            host, port, "POST", f"/datasets/{dataset}/ingest",
            {"values": list(range(preload_values)), "partitions": 4})
        if status != 200:
            raise ConfigurationError(
                f"preload ingest failed with {status}: {payload}")
    records: List[Tuple[float, int]] = []
    tasks = [
        _client(host, port,
                _client_ops(rng.spawn("client", i), dataset,
                            requests_per_client),
                records)
        for i in range(clients)
    ]
    t0 = monotonic()
    await asyncio.gather(*tasks)
    wall = monotonic() - t0
    return summarize(records, wall_seconds=wall, clients=clients,
                     requests_per_client=requests_per_client)


def run_self_hosted(*, seed: int, clients: int, requests_per_client: int,
                    preload_values: int = 20_000,
                    preload_partitions: int = 8,
                    bound_values: int = 256,
                    config=None) -> dict:
    """Spin up a service in-process, load it, tear it down.

    The served warehouse is seeded and preloaded (so queries have
    partitions to merge from request one) with ``load.demo``.  This is
    the entry point :func:`repro.bench.regression.run_serve_suite`
    times.
    """
    from repro.serve.app import ServeConfig, WarehouseService
    from repro.warehouse.warehouse import SampleWarehouse

    warehouse = SampleWarehouse(bound_values=bound_values, scheme="hr",
                                rng=SplittableRng(seed))
    service = WarehouseService(
        warehouse, config=config if config is not None else ServeConfig())
    # Preload through the service's own CAS path so the version tag
    # matches the catalog from the start.
    service.occ.mutate(
        "load.demo",
        lambda: warehouse.ingest_batch(
            "load.demo", list(range(preload_values)),
            partitions=preload_partitions))

    async def run() -> dict:
        host, port = await service.start(port=0)
        try:
            return await run_loadtest(
                host, port, clients=clients,
                requests_per_client=requests_per_client, seed=seed)
        finally:
            await service.aclose()

    return asyncio.run(run())

"""A minimal HTTP/1.1 layer over asyncio streams.

Just enough protocol for the service front: parse one request
(request line, headers, ``Content-Length`` body) from a
``StreamReader``, and render one JSON response.  Deliberately not a
web framework — stdlib-only transport is a hard requirement
(ISSUE/ROADMAP: no new dependencies), and the endpoints need nothing
beyond method + path + query + JSON bodies.  Connections are
one-request: every response carries ``Connection: close``, which keeps
connection state machines (pipelining, keep-alive timeouts) out of the
server entirely; the loadtest harness measures with per-request
connections accordingly.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.errors import ConfigurationError

__all__ = ["Request", "Response", "read_request", "render_response",
           "MAX_HEADER_BYTES", "MAX_BODY_BYTES"]

#: Caps keep a misbehaving client from ballooning server memory.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 64 * 1024 * 1024

_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass(frozen=True)
class Request:
    """One parsed HTTP request."""

    method: str
    path: str                       # decoded path, query stripped
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)  # lower-cased
    body: bytes = b""

    def json(self) -> dict:
        """The body as a JSON object (400 via ConfigurationError)."""
        if not self.body:
            return {}
        try:
            data = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ConfigurationError(
                f"request body is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ConfigurationError("request body must be a JSON object")
        return data


@dataclass(frozen=True)
class Response:
    """One JSON response (payload is serialized by render_response)."""

    status: int
    payload: dict
    headers: Dict[str, str] = field(default_factory=dict)


class _BadRequest(ValueError):
    """Malformed request line/headers (mapped to 400 by the server)."""


async def read_request(reader) -> Optional[Request]:
    """Parse one request from the stream; ``None`` on clean EOF.

    Raises :class:`ConfigurationError` on malformed syntax or
    oversized headers/bodies, which the connection handler renders as
    a 400/413 before closing.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # client closed without sending a request
        raise ConfigurationError("truncated HTTP request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise ConfigurationError("request head exceeds limit") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise ConfigurationError(
            f"request head of {len(head)} bytes exceeds "
            f"{MAX_HEADER_BYTES}")
    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, _version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError) as exc:
        raise ConfigurationError(
            f"malformed request line: {exc}") from exc
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ConfigurationError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    parts = urlsplit(target)
    query = dict(parse_qsl(parts.query, keep_blank_values=True))
    body = b""
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError as exc:
        raise ConfigurationError(
            f"bad Content-Length {length_text!r}") from exc
    if length < 0 or length > MAX_BODY_BYTES:
        raise ConfigurationError(
            f"Content-Length {length} outside [0, {MAX_BODY_BYTES}]")
    if length:
        body = await reader.readexactly(length)
    return Request(method=method.upper(), path=unquote(parts.path),
                   query=query, headers=headers, body=body)


def render_response(response: Response) -> bytes:
    """Serialize a :class:`Response` to wire bytes."""
    body = json.dumps(response.payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    phrase = _PHRASES.get(response.status, "Unknown")
    head_lines = [
        f"HTTP/1.1 {response.status} {phrase}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in sorted(response.headers.items()):
        head_lines.append(f"{name}: {value}")
    head = ("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1")
    return head + body

"""The warehouse service: endpoints, wiring, and the asyncio server.

:class:`WarehouseService` puts the pieces together over one
:class:`~repro.warehouse.warehouse.SampleWarehouse`:

* **transport** — :mod:`repro.serve.http` over ``asyncio.start_server``
  (one request per connection);
* **admission** — every warehouse endpoint passes the
  :class:`~repro.serve.admission.AdmissionController` (``/healthz``
  and ``/metrics`` bypass it: health checks must answer precisely when
  the service is saturated);
* **dispatch** — blocking warehouse/storage work runs on a persistent
  :class:`~repro.warehouse.parallel.ThreadExecutor` behind the
  :class:`~repro.serve.resilience.CircuitBreaker` and
  :class:`~repro.serve.resilience.RetryPolicy`;
* **consistency** — mutations are compare-and-swap through the
  :class:`~repro.serve.occ.VersionedCatalog`; queries run an
  optimistic read-validate loop (read tag → merge → re-check tag),
  so every response is labeled with a version at which it was exact,
  and every :class:`~repro.serve.cache.MergeCache` entry carries the
  tag it was computed under.

Endpoints, status codes, and the cache-invalidation contract are
documented in ``docs/serving.md``; metric names in
``docs/observability.md``.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.analytics.estimators import (estimate_avg, estimate_count,
                                        estimate_quantile, estimate_sum)
from repro.analytics.planner import QueryPlanner
from repro.errors import (CatalogError, CircuitOpenError,
                          ConfigurationError, OverloadedError, ReproError,
                          ServiceError, StorageError,
                          VersionConflictError)
from repro.obs.clock import monotonic
from repro.obs.runtime import OBS
from repro.rng import SplittableRng
from repro.serve.admission import AdmissionController
from repro.serve.cache import MergeCache
from repro.serve.http import (Request, Response, read_request,
                              render_response)
from repro.serve.occ import VersionedCatalog
from repro.serve.resilience import CircuitBreaker, RetryPolicy
from repro.warehouse.dataset import PartitionKey
from repro.warehouse.parallel import ThreadExecutor
from repro.warehouse.storage import FileStore, sample_to_dict

__all__ = ["ServeConfig", "WarehouseService", "DEFAULT_HOST",
           "DEFAULT_PORT"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8787


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one service instance (defaults suit tests/demos)."""

    max_concurrent: int = 64
    max_queue: int = 256
    shed_retry_after: float = 0.5
    breaker_failure_threshold: int = 5
    breaker_recovery_seconds: float = 2.0
    breaker_half_open_max: int = 1
    retry_attempts: int = 3
    retry_base_delay: float = 0.02
    retry_max_delay: float = 0.5
    cache_entries: int = 128
    spill_dir: Optional[str] = None
    max_workers: Optional[int] = None


class WarehouseService:
    """HTTP facade over one sample warehouse.

    Parameters
    ----------
    warehouse:
        The warehouse to serve.  The service assumes exclusive
        ownership of mutations: all writes must come through it, or
        version tags would drift from catalog state.
    config:
        A :class:`ServeConfig`.
    clock / retry_rng / sleep:
        Injection points for the failure-injection tests: the breaker
        clock, the retry-jitter rng, and the backoff sleep.
    """

    def __init__(self, warehouse, *, config: Optional[ServeConfig] = None,
                 clock: Callable[[], float] = monotonic,
                 retry_rng: Optional[SplittableRng] = None,
                 sleep=None) -> None:
        config = config if config is not None else ServeConfig()
        self._wh = warehouse
        self._config = config
        self._clock = clock
        self._occ = VersionedCatalog()
        spill = FileStore(config.spill_dir, durability="relaxed") \
            if config.spill_dir else None
        self._cache = MergeCache(max_entries=config.cache_entries,
                                 spill_store=spill)
        self._admission = AdmissionController(
            max_concurrent=config.max_concurrent,
            max_queue=config.max_queue,
            retry_after=config.shed_retry_after)
        self._breaker = CircuitBreaker(
            failure_threshold=config.breaker_failure_threshold,
            recovery_seconds=config.breaker_recovery_seconds,
            half_open_max=config.breaker_half_open_max,
            clock=clock)
        retry_kwargs = {} if sleep is None else {"sleep": sleep}
        self._retry = RetryPolicy(
            attempts=config.retry_attempts,
            base_delay=config.retry_base_delay,
            max_delay=config.retry_max_delay,
            rng=retry_rng, **retry_kwargs)
        # Mutations are not idempotent: ingest_batch registers
        # partitions one by one, so a StorageError mid-batch leaves a
        # committed prefix behind (the version tag only moves at the
        # end).  A retry would pass the CAS check and re-run the whole
        # batch, silently duplicating that prefix — so mutations get
        # exactly one attempt, keeping only the breaker accounting.
        self._mutate_once = RetryPolicy(attempts=1, **retry_kwargs)
        self._executor = ThreadExecutor(config.max_workers)
        self._planner = QueryPlanner(warehouse)
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # Introspection (for tests and the loadtest harness)
    # ------------------------------------------------------------------
    @property
    def breaker(self) -> CircuitBreaker:
        """The storage-path circuit breaker."""
        return self._breaker

    @property
    def cache(self) -> MergeCache:
        """The merge-result cache."""
        return self._cache

    @property
    def occ(self) -> VersionedCatalog:
        """The version-tag table."""
        return self._occ

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = DEFAULT_HOST,
                    port: int = DEFAULT_PORT) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port).

        Pass ``port=0`` to bind an ephemeral port (tests).
        """
        self._server = await asyncio.start_server(
            self._on_connection, host, port)
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def serve_forever(self) -> None:
        """Block serving until cancelled (the CLI entry point)."""
        if self._server is None:
            raise ConfigurationError("call start() before serve_forever()")
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting and drain the worker pool without blocking
        the event loop (satellite fix: ``ThreadExecutor.aclose``)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._executor.aclose()

    # ------------------------------------------------------------------
    # Connection + request plumbing
    # ------------------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        try:
            try:
                request = await read_request(reader)
            except ConfigurationError as exc:
                response = Response(400, {"error": "bad-request",
                                          "detail": str(exc)})
            else:
                if request is None:
                    return
                response = await self.handle(request)
            writer.write(render_response(response))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def handle(self, request: Request) -> Response:
        """Route one request; never raises (errors become responses)."""
        t0 = self._clock()
        if OBS.enabled:
            OBS.registry.counter("serve.requests").inc()
        try:
            response = await self._route(request)
        except ReproError as exc:
            response = self._error_response(exc)
        except Exception as exc:  # noqa: BLE001 - the transport boundary
            response = Response(500, {"error": "internal",
                                      "detail": str(exc)})
        if OBS.enabled:
            reg = OBS.registry
            reg.histogram("serve.request.seconds").observe(
                self._clock() - t0)
            if response.status >= 500:
                reg.counter("serve.errors").inc()
        return response

    @staticmethod
    def _error_response(exc: ReproError) -> Response:
        if isinstance(exc, OverloadedError):
            return Response(503, {"error": "overloaded",
                                  "detail": str(exc)},
                            headers={"Retry-After":
                                     f"{exc.retry_after:.3f}"})
        if isinstance(exc, CircuitOpenError):
            return Response(503, {"error": "circuit-open",
                                  "detail": str(exc)},
                            headers={"Retry-After":
                                     f"{max(exc.retry_after, 0.0):.3f}"})
        if isinstance(exc, VersionConflictError):
            return Response(409, {"error": "version-conflict",
                                  "detail": str(exc),
                                  "expected": exc.expected,
                                  "actual": exc.actual})
        if isinstance(exc, CatalogError):
            return Response(404, {"error": "not-found",
                                  "detail": str(exc)})
        if isinstance(exc, ConfigurationError):
            return Response(400, {"error": "bad-request",
                                  "detail": str(exc)})
        if isinstance(exc, StorageError):
            return Response(500, {"error": "storage",
                                  "detail": str(exc)})
        if isinstance(exc, ServiceError):
            return Response(503, {"error": "service",
                                  "detail": str(exc)})
        return Response(500, {"error": "internal", "detail": str(exc)})

    async def _route(self, request: Request) -> Response:
        if request.path == "/healthz":
            return Response(200, {"status": "ok",
                                  "breaker": self._breaker.state})
        if request.path == "/metrics":
            if not OBS.enabled:
                return Response(200, {"enabled": False})
            return Response(200, {"enabled": True,
                                  "metrics": OBS.registry.snapshot()})
        async with self._admission:
            return await self._route_warehouse(request)

    async def _route_warehouse(self, request: Request) -> Response:
        parts = [p for p in request.path.split("/") if p]
        if parts == ["datasets"]:
            if request.method != "GET":
                return self._method_not_allowed(request)
            return await self._handle_datasets()
        if len(parts) >= 2 and parts[0] == "datasets":
            dataset = parts[1]
            action = parts[2] if len(parts) == 3 else None
            if len(parts) > 3:
                return self._not_found(request)
            if action is None and request.method == "GET":
                return await self._handle_dataset_info(dataset)
            if action == "ingest" and request.method == "POST":
                return await self._handle_ingest(dataset, request)
            if action == "sample" and request.method == "GET":
                return await self._handle_sample(dataset, request)
            if action == "estimate" and request.method == "GET":
                return await self._handle_estimate(dataset, request)
            if action in ("rollout", "rollin") \
                    and request.method == "POST":
                return await self._handle_roll(dataset, action, request)
            if action in (None, "ingest", "sample", "estimate",
                          "rollout", "rollin"):
                return self._method_not_allowed(request)
        return self._not_found(request)

    @staticmethod
    def _not_found(request: Request) -> Response:
        return Response(404, {"error": "not-found",
                              "detail": f"no route for {request.path!r}"})

    @staticmethod
    def _method_not_allowed(request: Request) -> Response:
        return Response(405, {"error": "method-not-allowed",
                              "detail": f"{request.method} "
                                        f"{request.path!r}"})

    # ------------------------------------------------------------------
    # Guarded dispatch to the pool
    # ------------------------------------------------------------------
    async def _guarded(self, fn: Callable[[], object], *,
                       idempotent: bool = True):
        """Run blocking work on the pool behind breaker + retry.

        Only idempotent (read-path) work is retried; pass
        ``idempotent=False`` for mutations, which run through the
        breaker exactly once (see ``_mutate_once``).
        """
        async def attempt():
            return await asyncio.wrap_future(self._executor.submit(fn))

        policy = self._retry if idempotent else self._mutate_once
        return await policy.call(attempt, breaker=self._breaker)

    async def _offload(self, fn: Callable[[], object]) -> object:
        """Run post-commit housekeeping on the pool, off the loop.

        Unlike :meth:`_guarded`, no breaker or retry wraps the call:
        cache invalidation after a committed mutation must always
        run — tripping the breaker on it would strand stale merge
        plans behind a successful write.  The pool hop matters
        because ``MergeCache`` methods take a ``threading.Lock`` and
        eviction can touch the spill store (file I/O); doing either
        on the loop thread would stall every in-flight request
        (RPR111).
        """
        return await asyncio.wrap_future(self._executor.submit(fn))

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    async def _handle_datasets(self) -> Response:
        def op() -> List[dict]:
            catalog = self._wh.catalog
            names = self._occ.read(catalog.datasets)
            rows = []
            for name in names:
                metas = self._occ.read(
                    lambda n=name: list(catalog.partitions(n)))
                rows.append({
                    "dataset": name,
                    "version": self._occ.version(name),
                    "partitions": len(metas),
                    "population": sum(m.population_size for m in metas),
                })
            return rows

        rows = await self._guarded(op)
        return Response(200, {"datasets": rows})

    async def _handle_dataset_info(self, dataset: str) -> Response:
        def op() -> dict:
            catalog = self._wh.catalog
            metas = self._occ.read(
                lambda: list(catalog.partitions(dataset,
                                                only_active=False)))
            return {
                "dataset": dataset,
                "version": self._occ.version(dataset),
                "partitions": [{
                    "key": str(m.key),
                    "population_size": m.population_size,
                    "sample_size": m.sample_size,
                    "kind": m.kind.name,
                    "scheme": m.scheme,
                    "label": m.label,
                    "active": m.active,
                } for m in metas],
            }

        return Response(200, await self._guarded(op))

    @staticmethod
    def _expected_version(request: Request,
                          body: dict) -> Optional[int]:
        raw = request.headers.get("if-match",
                                  body.get("expected_version"))
        if raw is None:
            return None
        try:
            return int(raw)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"expected_version must be an integer, "
                f"got {raw!r}") from exc

    async def _handle_ingest(self, dataset: str,
                             request: Request) -> Response:
        body = request.json()
        values = body.get("values")
        if not isinstance(values, list) or not values:
            raise ConfigurationError(
                "ingest body needs a non-empty 'values' array")
        partitions = body.get("partitions", 1)
        if not isinstance(partitions, int) or partitions <= 0:
            raise ConfigurationError(
                f"partitions must be a positive integer, "
                f"got {partitions!r}")
        scheme = body.get("scheme")
        stream = body.get("stream", 0)
        labels = body.get("labels")
        expected = self._expected_version(request, body)

        def op() -> Tuple[List[PartitionKey], int]:
            # The CAS section covers seq allocation, sampling, and
            # registration as one atomic mutation; see docs/serving.md
            # for why sampling stays inside (seq numbers must not race).
            return self._occ.mutate(
                dataset,
                lambda: self._wh.ingest_batch(
                    dataset, values, partitions=partitions,
                    scheme=scheme, labels=labels, stream=stream),
                expected=expected)

        keys, version = await self._guarded(op, idempotent=False)
        await self._offload(lambda: self._cache.invalidate(dataset))
        return Response(200, {"dataset": dataset,
                              "keys": [str(k) for k in keys],
                              "version": version})

    def _selection(self, dataset: str,
                   request: Request) -> Tuple[str, Optional[List[str]]]:
        """Canonical selector string + parsed labels for a query."""
        labels = None
        if "labels" in request.query:
            labels = [p for p in request.query["labels"].split(",") if p]
            if not labels:
                raise ConfigurationError("empty labels selection")
        selector = json.dumps({"labels": labels}, sort_keys=True)
        return selector, labels

    def _merge_versioned(self, dataset: str, selector: str,
                         labels: Optional[List[str]]):
        """Optimistic read-validate loop (runs on a pool thread).

        Read the tag, merge, re-check the tag; a moved tag means a
        mutation committed mid-merge, so the result may mix catalog
        states — discard and redo against the new tag.  Every retry
        implies a completed mutation, so this starves only under a
        continuous mutation stream.
        """
        catalog = self._wh.catalog
        while True:
            version = self._occ.version(dataset)
            cached = self._cache.get(dataset, selector, version)
            if cached is not None:
                return version, cached, True
            if labels is not None:
                metas = self._occ.read(
                    lambda: catalog.merge_labels(dataset, labels))
            else:
                metas = self._occ.read(
                    lambda: list(catalog.partitions(dataset)))
            keys = [m.key for m in metas]
            sample = self._wh.sample_of(dataset, keys=keys)
            if self._occ.version(dataset) == version:
                self._cache.put(dataset, selector, version, sample)
                return version, sample, False

    async def _handle_sample(self, dataset: str,
                             request: Request) -> Response:
        selector, labels = self._selection(dataset, request)
        version, sample, cached = await self._guarded(
            lambda: self._merge_versioned(dataset, selector, labels))
        return Response(200, {"dataset": dataset, "version": version,
                              "cached": cached,
                              "sample": sample_to_dict(sample)})

    def _plan_versioned(self, dataset: str, stat: str, target: float,
                        relative: bool, labels: Optional[List[str]]):
        """Plan + execute under the optimistic read-validate loop.

        Same discipline as :meth:`_merge_versioned`: a version tag that
        moved between planning and execution means the read set may mix
        catalog states, so redo against the new tag.  Returns
        ``(version, estimate_or_None, plan)`` — the estimate is ``None``
        when the plan fell back (the caller then runs merge-all).
        """
        while True:
            version = self._occ.version(dataset)
            plan = self._occ.read(
                lambda: self._planner.plan(
                    dataset, stat, target_half_width=target,
                    labels=labels, relative=relative))
            if plan.fallback:
                return version, None, plan
            estimate = self._planner.execute(plan)
            if self._occ.version(dataset) == version:
                return version, estimate, plan

    async def _handle_estimate(self, dataset: str,
                               request: Request) -> Response:
        stat = request.query.get("stat", "avg")
        if stat not in ("count", "sum", "avg", "quantile"):
            raise ConfigurationError(
                f"unknown stat {stat!r}; expected count, sum, avg, "
                "or quantile")
        selector, labels = self._selection(dataset, request)
        payload = {"dataset": dataset, "stat": stat}

        target = None
        raw_target = request.query.get("target_half_width")
        if raw_target is not None:
            try:
                target = float(raw_target)
            except ValueError as exc:
                raise ConfigurationError(
                    f"target_half_width must be a number, "
                    f"got {raw_target!r}") from exc
        relative = request.query.get("relative", "0") not in ("0", "")

        if target is not None and stat != "quantile":
            version, est, plan = await self._guarded(
                lambda: self._plan_versioned(dataset, stat, target,
                                             relative, labels))
            payload["plan"] = {
                "planned": True,
                "certified": plan.certified,
                "fallback": plan.fallback,
                "reason": plan.reason,
                "selected": len(plan.selected),
                "total_partitions": plan.total_partitions,
                "predicted_half_width": plan.predicted_half_width,
                "target_half_width": plan.target_half_width,
            }
            if est is not None:
                payload.update(est.to_dict())
                payload.update({"version": version, "cached": False})
                return Response(200, payload)

        version, sample, cached = await self._guarded(
            lambda: self._merge_versioned(dataset, selector, labels))
        payload.update({"version": version, "cached": cached})
        if stat == "quantile":
            raw_fraction = request.query.get("fraction", "0.5")
            try:
                fraction = float(raw_fraction)
            except ValueError as exc:
                raise ConfigurationError(
                    f"fraction must be a number, "
                    f"got {raw_fraction!r}") from exc
            payload["fraction"] = fraction
            payload["value"] = estimate_quantile(sample, fraction)
        else:
            fn = {"count": estimate_count, "sum": estimate_sum,
                  "avg": estimate_avg}[stat]
            payload.update(fn(sample).to_dict())
        return Response(200, payload)

    async def _handle_roll(self, dataset: str, action: str,
                           request: Request) -> Response:
        body = request.json()
        raw_key = body.get("key")
        if not isinstance(raw_key, str):
            raise ConfigurationError(
                f"{action} body needs a 'key' string")
        key = PartitionKey.parse(raw_key)
        if key.dataset != dataset:
            raise ConfigurationError(
                f"key {raw_key!r} does not belong to dataset "
                f"{dataset!r}")
        expected = self._expected_version(request, body)

        def op() -> Tuple[None, int]:
            mutation = (self._wh.roll_out if action == "rollout"
                        else self._wh.roll_in)
            return self._occ.mutate(dataset, lambda: mutation(key),
                                    expected=expected)

        _, version = await self._guarded(op, idempotent=False)
        await self._offload(lambda: self._cache.invalidate(dataset))
        return Response(200, {"dataset": dataset, "key": raw_key,
                              "action": action, "version": version})

"""Reporters: render a battery report for terminals and machines.

* :func:`render_text` — one line per check (PASS/FAIL/REJECTED, the
  smallest adjusted p-value or the first failure message) plus a
  summary tail; what a human reads in CI logs.
* :func:`render_json` — the :meth:`BatteryReport.to_dict` payload with
  stable key order; what the ``verify-deep`` CI job archives and what
  tests parse back with :func:`parse_json`.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.testkit.battery import BatteryReport, CheckResult

__all__ = ["render_text", "render_json", "parse_json"]


def _status(result: CheckResult) -> str:
    if result.check.expect_reject:
        return "REJECTED (expected)" if result.passed else \
            "NOT REJECTED (negative control failed)"
    return "PASS" if result.passed else "FAIL"


def _detail(result: CheckResult) -> str:
    if result.failures:
        extra = f" (+{len(result.failures) - 1} more)" \
            if len(result.failures) > 1 else ""
        return result.failures[0] + extra
    if result.check.kind == "exact":
        return "exact agreement"
    if not result.adjusted:
        return "no p-values"
    return (f"min adjusted p = {min(result.adjusted):.3g} "
            f"over {len(result.adjusted)} seed(s)")


def render_text(report: BatteryReport) -> str:
    """The terminal report: one line per check, then a summary."""
    lines = []
    for result in report.results:
        lines.append(f"{result.check.name:32s} {_status(result):>12s}  "
                     f"[{result.check.tier}/{result.check.kind}] "
                     f"{_detail(result)}")
    failed = sum(1 for r in report.results if not r.passed)
    verdict = "ok" if report.passed else f"{failed} check(s) failed"
    lines.append(
        f"{verdict}: {len(report.results)} check(s), "
        f"{report.pvalue_count} p-value(s) {report.method}-corrected "
        f"per family at alpha={report.alpha}, "
        f"{report.seeds} seed(s), tier={report.tier}")
    return "\n".join(lines)


def render_json(report: BatteryReport, *,
                indent: Optional[int] = None) -> str:
    """The machine report (stable key order)."""
    return json.dumps(report.to_dict(), indent=indent, sort_keys=True)


def parse_json(text: str) -> dict:
    """The payload back out of a :func:`render_json` document."""
    return json.loads(text)

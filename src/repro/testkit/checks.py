"""The default check catalog: the paper's claims as battery checks.

Every statistical guarantee the reproduction makes is written here as a
named :class:`~repro.testkit.battery.Check` against the *public* sampler
APIs, so one ``repro verify`` run audits the whole chain:

===============================  =====================================
check                            claim
===============================  =====================================
``hb.uniformity.inclusion``      Algorithm HB includes every element
                                 equally often (Section 3 uniformity)
``hr.uniformity.inclusion``      same for Algorithm HR
``hypergeom.gof.inversion``      the eq. (2)/(3) sampler matches its
                                 closed-form pmf (inversion draw)
``hypergeom.gof.alias``          same via the alias-table draw
``sb.size.binomial``             Algorithm SB's sample size is exactly
                                 Binomial(N, q)
``hb.exceedance.bound``          HB's phase-3 fallback rate is the
                                 binomial tail of eq. (1)'s rate
``negative.concise``             Section 3.3: concise sampling is NOT
                                 uniform; the battery must reject
``negative.counting``            same for counting sampling
``differential.executors``       Serial/Thread/Process executors agree
                                 byte-for-byte
``differential.merge_tree``      serial vs balanced folds agree on
                                 deterministic merges
``kernels.hypergeom.gof``        the active kernel backend's batched
                                 eq. (3) draw matches the closed-form
                                 pmf
``kernels.binomial.law``         ``binomial_counts`` keeps each run
                                 Binomial(n, q) on the active backend
``kernels.srs.law``              ``srs_counts`` realizes the exact
                                 multivariate hypergeometric law
``kernels.pmf.crosscheck``       numpy and python backends compute the
                                 same eq. (3) pmf (skipped sans numpy)
``serve.query.equivalence``      answers served over HTTP are
                                 byte-identical to the library path
                                 and uniform in law across seeds
``aqp.planner.coverage``         planned-query intervals (synopsis +
                                 selected strata) hit their nominal
                                 coverage (docs/aqp.md)
``negative.aqp.coverage``        halving the planner's variance must
                                 be rejected as under-covering
``differential.merge_engine``    (deep) every merge engine mode/
                                 executor/backend agrees byte-exactly
``hr.uniformity.subset``         (deep) HR: all k-subsets equally
                                 likely, not just inclusion marginals
``purge.reservoir.subset``       (deep) Figure 4 purge draws uniform
                                 subsamples
``purge.bernoulli.inclusion``    (deep) Figure 3 purge keeps elements
                                 equally often
``hb.phase2.size.binomial``      (deep) HB phase-2 size is truncated
                                 Binomial(N, q) given no exceedance
``merge.hr.subset``              (deep) Theorem 1: HRMerge output is a
                                 uniform sample of the union
``merge.tree.homogeneity``       (deep) serial and balanced folds draw
                                 from the same inclusion law
===============================  =====================================

The negative controls carry ``expect_reject=True``: a battery that
cannot see the concise/counting counter-example proves nothing when it
accepts the real samplers.

Trial budgets are multiplied by the tier's ``scale``, so the deep tier
both sweeps more seeds and looks harder at each one.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.core.concise import ConciseSampler
from repro.core.counting import CountingSampler
from repro.core.footprint import FootprintModel
from repro.core.histogram import CompactHistogram
from repro.core.merge import hr_merge, merge_tree
from repro.core.purge import purge_bernoulli, purge_reservoir
from repro.errors import ConfigurationError
from repro.kernels import (binomial_counts, draw_hypergeometric_batch,
                           numpy_available, srs_counts, use_backend)
from repro.kernels import hypergeometric_pmf as kernel_pmf
from repro.rng import SplittableRng
from repro.sampling.distributions import (hypergeometric_pmf,
                                          sample_hypergeometric)
from repro.sampling.exceedance import binomial_sf, rate_for_bound
from repro.stats.uniformity import (chi_square_homogeneity,
                                    chi_square_pvalue,
                                    inclusion_frequency_test,
                                    subset_frequency_test)
from repro.testkit.battery import Battery
from repro.testkit.differential import (executor_differential,
                                        merge_engine_differential,
                                        merge_tree_differential)
from repro.warehouse.dataset import PartitionKey
from repro.warehouse.parallel import SampleTask, make_sampler
from repro.warehouse.synopsis import PartitionSynopsis

__all__ = ["default_battery", "collapse_cells", "binomial_pmf"]


# ----------------------------------------------------------------------
# Small numeric helpers
# ----------------------------------------------------------------------
def binomial_pmf(n: int, q: float) -> List[float]:
    """``[P(Binomial(n, q) = k) for k in 0..n]`` via log-gamma."""
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    if not 0.0 < q < 1.0:
        raise ConfigurationError(f"q must be in (0, 1), got {q}")
    log_q, log_1q = math.log(q), math.log1p(-q)
    lgn = math.lgamma(n + 1)
    return [math.exp(lgn - math.lgamma(k + 1) - math.lgamma(n - k + 1)
                     + k * log_q + (n - k) * log_1q)
            for k in range(n + 1)]


def collapse_cells(observed: Sequence[float], expected: Sequence[float],
                   min_expected: float = 5.0,
                   ) -> Tuple[List[float], List[float]]:
    """Merge adjacent cells until every expected count is adequate.

    Pearson's chi-square needs expected counts of roughly >= 5 per
    cell; distribution tails rarely have that.  Greedily accumulates
    adjacent cells left to right, folding any underweight remainder
    into the last emitted cell.
    """
    if len(observed) != len(expected):
        raise ConfigurationError(
            f"length mismatch: {len(observed)} vs {len(expected)}")
    obs_out: List[float] = []
    exp_out: List[float] = []
    acc_o = acc_e = 0.0
    for o, e in zip(observed, expected):
        acc_o += o
        acc_e += e
        if acc_e >= min_expected:
            obs_out.append(acc_o)
            exp_out.append(acc_e)
            acc_o = acc_e = 0.0
    if acc_e > 0.0:
        if exp_out:
            obs_out[-1] += acc_o
            exp_out[-1] += acc_e
        else:
            obs_out.append(acc_o)
            exp_out.append(acc_e)
    if len(exp_out) < 2:
        raise ConfigurationError(
            "fewer than two cells left after collapsing; increase the "
            "trial budget")
    return obs_out, exp_out


def _sampler_values(scheme: str, bound: int, exceedance_p: float = 0.01,
                    sb_rate: Optional[float] = None):
    """A ``sample_fn`` for the uniformity helpers: run one sampler."""
    def run(values, rng):
        sampler = make_sampler(scheme, population_size=len(values),
                               bound_values=bound,
                               exceedance_p=exceedance_p,
                               sb_rate=sb_rate, rng=rng)
        sampler.feed_many(values)
        return sampler.finalize().histogram.expand()
    return run


# ----------------------------------------------------------------------
# The Section 3.3 negative controls
# ----------------------------------------------------------------------
#: Under uniformity, conditioned on a size-3 outcome of the a,a,a,b,b,b
#: population, the histogram {a:2,b:1}-or-{a:1,b:2} (the paper's H3)
#: must carry 18 of 20 mass; concise/counting sampling never produce it.
_H3_SHARE = 18.0 / 20.0


def _negative_control_pvalue(sampler_factory, rng: SplittableRng,
                             trials: int) -> float:
    """P-value of the size-3 conditional law vs the uniform H3 share.

    ``sampler_factory(child_rng)`` builds a sampler whose footprint
    holds one (value, count) pair.  Chi-squares the observed [H3, rest]
    split of size-3 outcomes against [18/20, 2/20].  A uniform sampler
    yields an unremarkable p-value; concise/counting yield ~0 because
    H3 never occurs.  Returns 1.0 if no size-3 outcome was seen (which
    fails the expect_reject control and flags the check itself).
    """
    population = ["a", "a", "a", "b", "b", "b"]
    h3 = rest = 0
    for t in range(trials):
        sampler = sampler_factory(rng.spawn("negative", t))
        sampler.feed_many(population)
        pairs = dict(sampler.finalize().pairs())
        if sum(pairs.values()) != 3:
            continue
        if pairs in ({"a": 2, "b": 1}, {"a": 1, "b": 2}):
            h3 += 1
        else:
            rest += 1
    kept = h3 + rest
    if kept == 0:
        return 1.0
    return chi_square_pvalue([h3, rest],
                             [kept * _H3_SHARE, kept * (1.0 - _H3_SHARE)])


# ----------------------------------------------------------------------
# Serving-layer equivalence (docs/serving.md)
# ----------------------------------------------------------------------
def served_query_equivalence(rng: SplittableRng, *,
                             trials: int) -> float:
    """Served-vs-library equivalence over ``trials`` fresh servers.

    Two layers, one p-value:

    * **byte layer** — for each trial, ingest a population over HTTP
      into a seeded warehouse and fetch ``/sample`` and
      ``/estimate?stat=sum``; both answers must be byte-identical
      (canonical JSON) to the library path on an identically seeded
      warehouse.  Any mismatch returns ``0.0`` — a certain rejection.
    * **law layer** — the served merges are still *samples*; pooling
      their inclusion counts across trials and chi-squaring against
      uniform inclusion checks that the serving path (cache, OCC,
      thread handoff) did not bias the sampled law.
    """
    import asyncio
    import json

    from repro.analytics.estimators import estimate_sum
    from repro.serve.app import WarehouseService
    from repro.serve.http import Request
    from repro.warehouse.storage import sample_to_dict
    from repro.warehouse.warehouse import SampleWarehouse

    population, bound, partitions = 60, 12, 2
    values = list(range(population))
    counts = [0] * population
    mismatches = 0

    def canonical(payload: object) -> str:
        return json.dumps(payload, sort_keys=True)

    async def one_trial(trial_rng: SplittableRng) -> Tuple[dict, dict]:
        warehouse = SampleWarehouse(bound_values=bound, scheme="hr",
                                    rng=trial_rng)
        # Constructing the service touches the filesystem when spill is
        # configured (FileStore.__init__ makedirs); this check harness
        # runs one task per loop via asyncio.run, so there is nothing
        # else on the loop to stall.
        service = WarehouseService(warehouse)  # repro: noqa[RPR111]
        try:
            ingest = Request(
                method="POST", path="/datasets/d/ingest",
                body=json.dumps({"values": values,
                                 "partitions": partitions}).encode())
            response = await service.handle(ingest)
            if response.status != 200:
                raise ConfigurationError(
                    f"served ingest failed: {response.payload}")
            sample_resp = await service.handle(
                Request(method="GET", path="/datasets/d/sample"))
            est_resp = await service.handle(
                Request(method="GET", path="/datasets/d/estimate",
                        query={"stat": "sum"}))
            return sample_resp.payload, est_resp.payload
        finally:
            await service.aclose()

    for t in range(trials):
        # spawn is a pure function of (seed, labels): the same labels
        # give the served and library warehouses identical rngs.
        served_sample, served_est = asyncio.run(
            one_trial(rng.spawn("serve", t)))

        library = SampleWarehouse(bound_values=bound, scheme="hr",
                                  rng=rng.spawn("serve", t))
        library.ingest_batch("d", values, partitions=partitions)
        sample = library.sample_of("d")
        est = estimate_sum(sample)
        want_est = {"ci_high": est.ci_high, "ci_low": est.ci_low,
                    "confidence": est.confidence, "exact": est.exact,
                    "value": est.value}
        got_est = {k: served_est.get(k) for k in want_est}
        if canonical(served_sample["sample"]) != \
                canonical(sample_to_dict(sample)) \
                or canonical(got_est) != canonical(want_est):
            mismatches += 1
        for value, n in served_sample["sample"]["histogram"]:
            counts[value] += n

    if mismatches:
        return 0.0
    total = sum(counts)
    return chi_square_pvalue(counts,
                             [total / population] * population)


def aqp_coverage_pvalue(rng: SplittableRng, trials: int, *,
                        variance_scale: float = 1.0) -> float:
    """Do planned-query intervals cover the truth at their nominal rate?

    Each trial builds a fresh four-partition warehouse whose synopses
    were estimated upstream from coarse sketches (basis 16) while the
    stored samples are richer (bound 64) — the configuration where the
    planner's greedy selection actually engages (docs/aqp.md).  A 90 %
    sum interval is planned at a target that typically forces several
    selections, executed, and scored against the known population sum;
    the covered/missed split is chi-squared against the nominal rate.

    ``variance_scale`` is the negative-control hook: executing with
    halved variance shrinks every interval by ``sqrt(2)``, dropping
    true coverage to ~0.76 — far enough from 0.9 that the battery must
    reject it (RPR051 discipline: a coverage check that cannot see a
    broken error model proves nothing).
    """
    from repro.analytics.planner import QueryPlanner
    from repro.warehouse.parallel import sample_partition
    from repro.warehouse.warehouse import SampleWarehouse

    confidence = 0.9
    covered = 0
    for t in range(trials):
        child = rng.spawn("aqp-cov", t)
        warehouse = SampleWarehouse(bound_values=64, scheme="hr",
                                    rng=child.spawn("wh"))
        vrng = child.spawn("values")
        truth = 0.0
        for i in range(4):
            values = [vrng.gauss(50.0 + 10.0 * i, 8.0 + 2.0 * i)
                      for _ in range(300)]
            truth += sum(values)
            live = sample_partition(SampleTask(
                values=values, scheme="hr", bound_values=64,
                seed=child.spawn("live", i).seed_value))
            sketch = sample_partition(SampleTask(
                values=values, scheme="hr", bound_values=16,
                seed=child.spawn("sketch", i).seed_value))
            warehouse.ingest_sample(
                PartitionKey("cov.d", 0, i), live,
                synopsis=PartitionSynopsis.from_sample(sketch))
        planner = QueryPlanner(warehouse)
        plan = planner.plan("cov.d", "sum", target_half_width=0.02,
                            confidence=confidence, relative=True)
        if plan.fallback:
            # A noisy sketch can make 2% unreachable; a loose target
            # still exercises the synopsis-stratum variance path.
            plan = planner.plan("cov.d", "sum", target_half_width=1.0,
                                confidence=confidence, relative=True)
        estimate = planner.execute(plan,
                                   variance_scale=variance_scale)
        if estimate.ci_low <= truth <= estimate.ci_high:
            covered += 1
    return chi_square_pvalue(
        [covered, trials - covered],
        [trials * confidence, trials * (1.0 - confidence)])


# ----------------------------------------------------------------------
# The default battery
# ----------------------------------------------------------------------
def default_battery() -> Battery:
    """Build the battery of all standard checks (see module docstring)."""
    battery = Battery()

    # -- uniformity of the real samplers --------------------------------
    @battery.check("hb.uniformity.inclusion",
                   description="Algorithm HB includes every element "
                               "equally often")
    def hb_inclusion(rng: SplittableRng, scale: int) -> float:
        return inclusion_frequency_test(
            _sampler_values("hb", bound=8), list(range(24)),
            trials=250 * scale, rng=rng)

    @battery.check("hr.uniformity.inclusion",
                   description="Algorithm HR includes every element "
                               "equally often")
    def hr_inclusion(rng: SplittableRng, scale: int) -> float:
        return inclusion_frequency_test(
            _sampler_values("hr", bound=8), list(range(24)),
            trials=250 * scale, rng=rng)

    @battery.check("hr.uniformity.subset", tier="deep",
                   description="Algorithm HR realizes every k-subset "
                               "equally often")
    def hr_subset(rng: SplittableRng, scale: int) -> float:
        return subset_frequency_test(
            _sampler_values("hr", bound=2), list(range(6)), size=2,
            trials=150 * scale, rng=rng)

    # -- the eq. (2)/(3) hypergeometric sampler -------------------------
    def hypergeom_gof(method: str):
        def run(rng: SplittableRng, scale: int) -> float:
            n1, n2, k = 13, 9, 7
            pmf = hypergeometric_pmf(n1, n2, k)
            lo = max(0, k - n2)
            draws = 1200 * scale
            observed = [0] * len(pmf)
            for _ in range(draws):
                observed[sample_hypergeometric(n1, n2, k, rng,
                                               method=method) - lo] += 1
            expected = [p * draws for p in pmf]
            return chi_square_pvalue(*collapse_cells(observed, expected))
        return run

    battery.check("hypergeom.gof.inversion",
                  description="eq. (2)/(3) inversion draw matches the "
                              "closed-form pmf")(hypergeom_gof("inversion"))
    battery.check("hypergeom.gof.alias",
                  description="eq. (2)/(3) alias-table draw matches the "
                              "closed-form pmf")(hypergeom_gof("alias"))

    # -- Bernoulli-phase laws -------------------------------------------
    @battery.check("sb.size.binomial",
                   description="Algorithm SB sample size is "
                               "Binomial(N, q)")
    def sb_size(rng: SplittableRng, scale: int) -> float:
        n, q = 200, 0.1
        trials = 250 * scale
        sizes = [0] * (n + 1)
        for t in range(trials):
            sampler = make_sampler("sb", population_size=n,
                                   bound_values=n, exceedance_p=0.01,
                                   sb_rate=q, rng=rng.spawn("sb", t))
            sampler.feed_many(range(n))
            sizes[sampler.finalize().size] += 1
        expected = [p * trials for p in binomial_pmf(n, q)]
        return chi_square_pvalue(*collapse_cells(sizes, expected))

    @battery.check("hb.exceedance.bound",
                   description="HB falls back to phase 3 with exactly "
                               "the binomial tail of eq. (1)'s rate")
    def hb_exceedance(rng: SplittableRng, scale: int) -> float:
        # HB's phase-2 -> 3 trigger is conservative: it fires when the
        # Bernoulli sample *reaches* n_F, so the realized fallback
        # probability is P(Binomial(N, q) >= n_F) — equal to the
        # eq. (1) target p up to one pmf cell, and converging to it at
        # production scale (see the AlgorithmHB module docstring).
        n, bound, p = 400, 30, 0.05
        q = rate_for_bound(n, p, bound, method="auto")
        fallback = binomial_sf(n, q, bound - 1)
        trials = 300 * scale
        exceeded = 0
        for t in range(trials):
            sampler = make_sampler("hb", population_size=n,
                                   bound_values=bound, exceedance_p=p,
                                   sb_rate=None, rng=rng.spawn("hb", t))
            sampler.feed_many(range(n))
            if sampler.finalize().kind.is_reservoir:
                exceeded += 1
        return chi_square_pvalue(
            [exceeded, trials - exceeded],
            [trials * fallback, trials * (1.0 - fallback)])

    @battery.check("hb.phase2.size.binomial", tier="deep",
                   description="HB phase-2 size given no exceedance is "
                               "truncated Binomial(N, q)")
    def hb_phase2_size(rng: SplittableRng, scale: int) -> float:
        # A phase-2 outcome means the Bernoulli sample never reached
        # n_F (distinct values keep the size monotone during the
        # stream), so the conditional size law is Binomial(N, q)
        # truncated at n_F - 1.
        n, bound, p = 300, 30, 0.05
        q = rate_for_bound(n, p, bound, method="auto")
        trials = 120 * scale
        sizes = [0] * bound
        kept = 0
        for t in range(trials):
            sampler = make_sampler("hb", population_size=n,
                                   bound_values=bound, exceedance_p=p,
                                   sb_rate=None, rng=rng.spawn("hb", t))
            sampler.feed_many(range(n))
            sample = sampler.finalize()
            if sample.kind.is_bernoulli:
                sizes[sample.size] += 1
                kept += 1
        pmf = binomial_pmf(n, q)[:bound]
        mass = sum(pmf)
        expected = [kept * p_k / mass for p_k in pmf]
        return chi_square_pvalue(*collapse_cells(sizes, expected))

    # -- purges (Figures 3 and 4) ---------------------------------------
    @battery.check("purge.bernoulli.inclusion", tier="deep",
                   description="Figure 3 Bernoulli purge keeps elements "
                               "equally often")
    def bernoulli_purge(rng: SplittableRng, scale: int) -> float:
        def run(values, child):
            hist = CompactHistogram.from_values(values)
            return purge_bernoulli(hist, 0.4, child).expand()
        return inclusion_frequency_test(run, list(range(20)),
                                        trials=150 * scale, rng=rng)

    @battery.check("purge.reservoir.subset", tier="deep",
                   description="Figure 4 reservoir purge draws uniform "
                               "subsamples")
    def reservoir_purge(rng: SplittableRng, scale: int) -> float:
        def run(values, child):
            hist = CompactHistogram.from_values(values)
            return purge_reservoir(hist, 3, child).expand()
        return subset_frequency_test(run, list(range(8)), size=3,
                                     trials=160 * scale, rng=rng)

    # -- merges ---------------------------------------------------------
    @battery.check("merge.hr.subset", tier="deep",
                   description="Theorem 1: HRMerge output is a uniform "
                               "sample of the union")
    def merge_hr_subset(rng: SplittableRng, scale: int) -> float:
        def run(values, child):
            half = len(values) // 2
            parts = []
            for i, part in enumerate((values[:half], values[half:])):
                sampler = make_sampler("hr", population_size=len(part),
                                       bound_values=2, exceedance_p=0.01,
                                       sb_rate=None,
                                       rng=child.spawn("part", i))
                sampler.feed_many(part)
                parts.append(sampler.finalize())
            merged = hr_merge(parts[0], parts[1],
                              rng=child.spawn("merge"))
            return merged.histogram.expand()
        return subset_frequency_test(run, list(range(8)), size=2,
                                     trials=150 * scale, rng=rng)

    @battery.check("merge.tree.homogeneity", tier="deep",
                   description="serial and balanced merge_tree folds "
                               "draw from one inclusion law")
    def tree_homogeneity(rng: SplittableRng, scale: int) -> float:
        population = list(range(24))
        parts = [population[i:i + 6] for i in range(0, 24, 6)]
        trials = 150 * scale

        def inclusion_counts(mode: str, child: SplittableRng) -> List[int]:
            counts = [0] * len(population)
            for t in range(trials):
                run_rng = child.spawn("trial", t)
                samples = []
                for i, part in enumerate(parts):
                    sampler = make_sampler(
                        "hr", population_size=len(part), bound_values=3,
                        exceedance_p=0.01, sb_rate=None,
                        rng=run_rng.spawn("part", i))
                    sampler.feed_many(part)
                    samples.append(sampler.finalize())
                merged = merge_tree(samples, rng=run_rng.spawn("fold"),
                                    mode=mode)
                for v in merged.histogram.expand():
                    counts[v] += 1
            return counts

        return chi_square_homogeneity(
            inclusion_counts("serial", rng.spawn("serial")),
            inclusion_counts("balanced", rng.spawn("balanced")))

    # -- Section 3.3 negative controls ----------------------------------
    model = FootprintModel(value_bytes=8, count_bytes=4)
    pair_bytes = model.value_bytes + model.count_bytes

    @battery.check("negative.concise", expect_reject=True,
                   description="Section 3.3: concise sampling must be "
                               "rejected as non-uniform")
    def negative_concise(rng: SplittableRng, scale: int) -> float:
        return _negative_control_pvalue(
            lambda child: ConciseSampler(footprint_bytes=pair_bytes,
                                         rng=child, model=model),
            rng, trials=300 * scale)

    @battery.check("negative.counting", expect_reject=True,
                   description="Section 3.3: counting sampling must be "
                               "rejected as non-uniform")
    def negative_counting(rng: SplittableRng, scale: int) -> float:
        return _negative_control_pvalue(
            lambda child: CountingSampler(footprint_bytes=pair_bytes,
                                          rng=child, model=model),
            rng, trials=300 * scale)

    # -- differential checks --------------------------------------------
    @battery.check("differential.executors", kind="exact",
                   description="Serial/Thread/Process executors agree "
                               "byte-for-byte on sample_to_dict")
    def executors_agree(rng: SplittableRng, scale: int) -> List[str]:
        tasks = []
        for scheme, size, bound in (("hb", 300, 24), ("hr", 300, 24),
                                    ("sb", 200, 16), ("hb", 120, 150)):
            tasks.append(SampleTask(
                values=tuple(range(size)), scheme=scheme,
                bound_values=bound, exceedance_p=0.01,
                sb_rate=0.15 if scheme == "sb" else None,
                seed=rng.randrange(2 ** 31)))
        return executor_differential(tasks)

    @battery.check("differential.merge_tree", kind="exact",
                   description="serial vs balanced folds agree exactly "
                               "on deterministic merges")
    def merge_tree_agrees(rng: SplittableRng, scale: int) -> List[str]:
        failures: List[str] = []
        # Same-rate SB samples: the union needs no purging, so both
        # fold shapes compute the same deterministic multiset join.
        sb_samples = []
        for i in range(5):
            sampler = make_sampler("sb", population_size=30,
                                   bound_values=16, exceedance_p=0.01,
                                   sb_rate=0.2, rng=rng.spawn("sb", i))
            sampler.feed_many(range(30 * i, 30 * i + 30))
            sb_samples.append(sampler.finalize())
        failures += merge_tree_differential(sb_samples,
                                            rng=rng.spawn("sb-fold"),
                                            label="sb-same-rate")
        # Exhaustive HR samples whose union stays under the bound: every
        # merge is a resumed phase-1 stream, no randomness consumed.
        hr_samples = []
        for i in range(5):
            sampler = make_sampler("hr", population_size=8,
                                   bound_values=64, exceedance_p=0.01,
                                   sb_rate=None, rng=rng.spawn("hr", i))
            sampler.feed_many(range(8 * i, 8 * i + 8))
            hr_samples.append(sampler.finalize())
        failures += merge_tree_differential(hr_samples,
                                            rng=rng.spawn("hr-fold"),
                                            label="hr-exhaustive")
        return failures

    # -- kernel backends ------------------------------------------------
    # These gate the vectorized kernel layer (docs/performance.md):
    # whatever backend is the session's fastest must draw from the same
    # laws as the pure-Python reference.  ``_primary_backend`` pins the
    # vectorized backend when numpy is importable and degrades to the
    # reference itself otherwise, so the battery stays green (and still
    # meaningful as a regression check) on numpy-free interpreters.
    def _primary_backend() -> str:
        return "numpy" if numpy_available() else "python"

    @battery.check("kernels.hypergeom.gof",
                   description="the kernel backend's batched eq. (3) "
                               "draw matches the closed-form pmf")
    def kernel_hypergeom(rng: SplittableRng, scale: int) -> float:
        n1, n2, k = 13, 9, 7
        pmf = hypergeometric_pmf(n1, n2, k)
        lo = max(0, k - n2)
        draws = 1200 * scale
        with use_backend(_primary_backend()):
            values = draw_hypergeometric_batch(n1, n2, k, rng, draws)
        observed = [0] * len(pmf)
        for v in values:
            observed[v - lo] += 1
        expected = [p * draws for p in pmf]
        return chi_square_pvalue(*collapse_cells(observed, expected))

    @battery.check("kernels.binomial.law",
                   description="binomial_counts keeps each run "
                               "Binomial(n, q) on the kernel backend")
    def kernel_binomial(rng: SplittableRng, scale: int) -> float:
        n, q = 60, 0.25
        trials = 600 * scale
        with use_backend(_primary_backend()):
            kept = binomial_counts([n] * trials, q, rng)
        observed = [0] * (n + 1)
        for k in kept:
            observed[k] += 1
        expected = [p * trials for p in binomial_pmf(n, q)]
        return chi_square_pvalue(*collapse_cells(observed, expected))

    @battery.check("kernels.srs.law",
                   description="srs_counts realizes the exact "
                               "multivariate hypergeometric law")
    def kernel_srs(rng: SplittableRng, scale: int) -> float:
        # Small enough to enumerate the joint law exactly: P(kept) =
        # prod_i C(runs_i, kept_i) / C(total, size).
        runs, size = [2, 1, 1], 2
        total = sum(runs)
        outcomes = [(2, 0, 0), (1, 1, 0), (1, 0, 1), (0, 1, 1)]
        pmf = [math.prod(math.comb(r, k) for r, k in zip(runs, kept))
               / math.comb(total, size) for kept in outcomes]
        trials = 600 * scale
        observed = [0] * len(outcomes)
        with use_backend(_primary_backend()):
            for _ in range(trials):
                observed[outcomes.index(
                    tuple(srs_counts(runs, size, rng)))] += 1
        expected = [p * trials for p in pmf]
        return chi_square_pvalue(observed, expected)

    @battery.check("kernels.pmf.crosscheck", kind="exact",
                   description="numpy and python backends compute the "
                               "same eq. (3) pmf")
    def kernel_pmf_crosscheck(rng: SplittableRng, scale: int) -> List[str]:
        del rng, scale  # deterministic numeric comparison
        if not numpy_available():
            return []  # nothing to cross-check: one backend
        failures: List[str] = []
        for n1, n2, k in ((13, 9, 7), (200, 150, 64), (5, 5, 10),
                          (1000, 2, 2), (3, 400, 100), (64, 64, 64)):
            with use_backend("python"):
                want = kernel_pmf(n1, n2, k)
            with use_backend("numpy"):
                got = kernel_pmf(n1, n2, k)
            if len(want) != len(got):
                failures.append(
                    f"pmf({n1},{n2},{k}): support length "
                    f"{len(got)} != {len(want)}")
                continue
            for i, (w, g) in enumerate(zip(want, got)):
                if not math.isclose(w, g, rel_tol=1e-9, abs_tol=1e-12):
                    failures.append(
                        f"pmf({n1},{n2},{k})[{i}]: {g!r} != {w!r}")
        return failures

    @battery.check("differential.merge_engine", kind="exact",
                   tier="deep",
                   description="every merge engine mode/executor/"
                               "backend agrees byte-exactly")
    def merge_engine_agrees(rng: SplittableRng, scale: int) -> List[str]:
        del scale  # exact check: the sweep is the budget
        samples = []
        for i in range(6):
            sampler = make_sampler("hr", population_size=400,
                                   bound_values=24, exceedance_p=0.01,
                                   sb_rate=None, rng=rng.spawn("part", i))
            sampler.feed_many(range(400 * i, 400 * i + 400))
            samples.append(sampler.finalize())
        return merge_engine_differential(samples,
                                         rng=rng.spawn("engine"),
                                         worker_counts=(2,),
                                         label="hr-partitions")

    # -- the serving layer ----------------------------------------------
    @battery.check("serve.query.equivalence",
                   description="HTTP-served merges are byte-identical "
                               "to the library path and uniform in law")
    def serve_equivalence(rng: SplittableRng, scale: int) -> float:
        return served_query_equivalence(rng, trials=4 * scale)

    # -- the AQP planner -------------------------------------------------
    @battery.check("aqp.planner.coverage",
                   description="planned-query intervals hit nominal "
                               "coverage across synopsis and selected "
                               "strata")
    def aqp_coverage(rng: SplittableRng, scale: int) -> float:
        return aqp_coverage_pvalue(rng, trials=80 * scale)

    @battery.check("negative.aqp.coverage", expect_reject=True,
                   description="a planner whose variance is halved "
                               "under-covers and must be rejected")
    def negative_aqp_coverage(rng: SplittableRng, scale: int) -> float:
        return aqp_coverage_pvalue(rng, trials=80 * scale,
                                   variance_scale=0.5)

    return battery

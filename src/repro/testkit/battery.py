"""The battery runner: named checks, seed sweeps, one suite-wide alpha.

A :class:`Check` wraps a statistical or exact acceptance test of the
warehouse.  A :class:`Battery` runs every selected check over a sweep of
independent seeds, pools the resulting p-values, and applies one
multiple-testing correction (:mod:`repro.testkit.corrections`), so the
suite-wide false-alarm rate is set once (``alpha``) instead of being
silently inflated by every new assert.  Positive checks and negative
controls are corrected as **separate families**: a control's p-values
are ~0 by construction, and pooling them with the positives would let
BH's step-up deflate every positive check's adjusted p-value, pushing
the realized false-alarm rate far above the configured alpha.

Check kinds
-----------
``pvalue``
    ``fn(rng, scale) -> float`` returns one p-value per seed.  ``rng``
    is a freshly spawned :class:`~repro.rng.SplittableRng`; ``scale``
    multiplies trial budgets (1 for the fast tier, larger for deep).
    A positive check passes when *no* seed's adjusted p-value falls
    below alpha.  A negative control (``expect_reject=True``) passes
    when *every* seed is rejected — the battery must be able to see
    the Section 3.3 non-uniformity, or its acceptances mean nothing.
``exact``
    ``fn(rng, scale) -> list[str]`` returns failure messages (empty
    means pass).  Used for the differential checks where the required
    agreement is byte-identical, not statistical.

Seed-sweep asserts for tests
----------------------------
:func:`sweep` is the miniature of the same idea for individual test
files: run one p-value function over several seeds, Holm-adjust, and
report.  Tests assert ``sweep(...).accepted`` instead of comparing a
single raw p-value against a threshold (the pattern the RPR051 lint
rule rejects).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs import OBS
from repro.obs.clock import monotonic
from repro.rng import SplittableRng
from repro.testkit.corrections import METHODS, adjust_pvalues

__all__ = ["Check", "CheckResult", "BatteryReport", "Battery",
           "SweepResult", "sweep", "TIERS", "KINDS"]

TIERS = ("fast", "deep")
KINDS = ("pvalue", "exact")

#: Per-tier defaults: (number of seeds, trial-budget scale factor).
TIER_SEEDS = {"fast": 5, "deep": 20}
TIER_SCALE = {"fast": 1, "deep": 2}


@dataclass(frozen=True)
class Check:
    """One named acceptance check (see module docstring for kinds)."""

    name: str
    fn: Callable[[SplittableRng, int], object]
    kind: str = "pvalue"
    tier: str = "fast"
    expect_reject: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"check {self.name!r}: kind must be one of {KINDS}, "
                f"got {self.kind!r}")
        if self.tier not in TIERS:
            raise ConfigurationError(
                f"check {self.name!r}: tier must be one of {TIERS}, "
                f"got {self.tier!r}")
        if self.expect_reject and self.kind != "pvalue":
            raise ConfigurationError(
                f"check {self.name!r}: expect_reject only applies to "
                "pvalue checks")


@dataclass
class CheckResult:
    """Outcome of one check across the seed sweep."""

    check: Check
    pvalues: List[float] = field(default_factory=list)
    adjusted: List[float] = field(default_factory=list)
    rejected: List[bool] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def passed(self) -> bool:
        """Did the check meet its acceptance condition?"""
        if self.failures:
            return False
        if self.check.kind == "exact":
            return True
        if self.check.expect_reject:
            return bool(self.rejected) and all(self.rejected)
        return not any(self.rejected)

    def to_dict(self) -> dict:
        """JSON-ready summary (stable key order via sort_keys later)."""
        return {
            "name": self.check.name,
            "kind": self.check.kind,
            "tier": self.check.tier,
            "expect_reject": self.check.expect_reject,
            "passed": self.passed,
            "pvalues": list(self.pvalues),
            "adjusted": list(self.adjusted),
            "rejected": list(self.rejected),
            "failures": list(self.failures),
            "seconds": self.seconds,
        }


@dataclass
class BatteryReport:
    """Everything one :meth:`Battery.run` produced."""

    tier: str
    alpha: float
    method: str
    seeds: int
    scale: int
    results: List[CheckResult]

    @property
    def passed(self) -> bool:
        """True when every executed check met its condition."""
        return all(r.passed for r in self.results)

    @property
    def pvalue_count(self) -> int:
        """How many p-values entered the per-family corrections."""
        return sum(len(r.pvalues) for r in self.results)

    def to_dict(self) -> dict:
        """JSON-ready report payload."""
        return {
            "tier": self.tier,
            "alpha": self.alpha,
            "method": self.method,
            "seeds": self.seeds,
            "scale": self.scale,
            "passed": self.passed,
            "pvalue_count": self.pvalue_count,
            "checks": [r.to_dict() for r in self.results],
        }


class Battery:
    """A named collection of checks run under one correction."""

    def __init__(self) -> None:
        self._checks: Dict[str, Check] = {}

    def add(self, check: Check) -> Check:
        """Register a check; names must be unique."""
        if check.name in self._checks:
            raise ConfigurationError(
                f"duplicate check name {check.name!r}")
        self._checks[check.name] = check
        return check

    def check(self, name: str, *, kind: str = "pvalue",
              tier: str = "fast", expect_reject: bool = False,
              description: str = "") -> Callable:
        """Decorator form of :meth:`add`."""
        def register(fn: Callable) -> Callable:
            desc = description
            if not desc and fn.__doc__:
                desc = fn.__doc__.strip().splitlines()[0]
            self.add(Check(name=name, fn=fn, kind=kind, tier=tier,
                           expect_reject=expect_reject,
                           description=desc))
            return fn
        return register

    def checks(self, tier: Optional[str] = None) -> List[Check]:
        """Registered checks, optionally restricted to a tier.

        The deep tier is a superset: ``tier="deep"`` returns every
        check; ``tier="fast"`` only the fast ones.
        """
        items = list(self._checks.values())
        if tier is None or tier == "deep":
            return items
        if tier not in TIERS:
            raise ConfigurationError(
                f"tier must be one of {TIERS}, got {tier!r}")
        return [c for c in items if c.tier == "fast"]

    def names(self) -> List[str]:
        """Registered check names in registration order."""
        return list(self._checks)

    def run(self, *, rng: SplittableRng, tier: str = "fast",
            seeds: Optional[int] = None, alpha: float = 0.01,
            method: str = "bh",
            select: Optional[Sequence[str]] = None) -> BatteryReport:
        """Run the battery and return a :class:`BatteryReport`.

        Every selected check runs once per seed with an independently
        spawned child rng.  Positive-check p-values are pooled and
        adjusted with ``method``; negative controls are adjusted as
        their own family so their by-design ~0 p-values cannot
        contaminate the positives' correction.  A (check, seed) cell
        is *rejected* when its adjusted p-value is below ``alpha``.
        """
        if tier not in TIERS:
            raise ConfigurationError(
                f"tier must be one of {TIERS}, got {tier!r}")
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError(
                f"alpha must be in (0, 1), got {alpha}")
        if method not in METHODS:
            raise ConfigurationError(
                f"method must be one of {METHODS}, got {method!r}")
        n_seeds = TIER_SEEDS[tier] if seeds is None else seeds
        if n_seeds < 1:
            raise ConfigurationError(
                f"need at least one seed, got {n_seeds}")
        scale = TIER_SCALE[tier]
        chosen = self.checks(tier)
        if select is not None:
            wanted = set(select)
            unknown = wanted - set(self._checks)
            if unknown:
                raise ConfigurationError(
                    f"unknown check(s): {sorted(unknown)}; "
                    f"known: {self.names()}")
            chosen = [c for c in chosen if c.name in wanted]
            out_of_tier = wanted - {c.name for c in chosen}
            if out_of_tier:
                raise ConfigurationError(
                    f"check(s) {sorted(out_of_tier)} are deep-tier "
                    f"only and would be silently skipped under "
                    f"tier={tier!r}; rerun with --tier deep")
        if not chosen:
            raise ConfigurationError("no checks selected")

        results = [CheckResult(check=c) for c in chosen]
        reg = OBS.registry
        for result in results:
            check = result.check
            t0 = monotonic()
            for s in range(n_seeds):
                child = rng.spawn("verify", check.name, s)
                outcome = check.fn(child, scale)
                if check.kind == "pvalue":
                    p = float(outcome)  # type: ignore[arg-type]
                    if not 0.0 <= p <= 1.0:
                        raise ConfigurationError(
                            f"check {check.name!r} returned p={p}")
                    result.pvalues.append(p)
                else:
                    result.failures.extend(str(m) for m in outcome)
            result.seconds = monotonic() - t0
            if OBS.enabled:
                reg.counter("verify.checks").inc()
                reg.histogram("verify.check.seconds").observe(
                    result.seconds)

        # Pool p-values under one correction per *family*.  Positive
        # checks form one family, so the suite-wide alpha applies to
        # the whole battery rather than per check.  Negative controls
        # (expect_reject) are adjusted as a separate family: their
        # p-values are ~0 by design, and letting them enter BH's
        # step-up would drag down every positive check's adjusted
        # p-value, silently inflating the suite-wide false-alarm rate
        # far past alpha.
        positives = [r for r in results if not r.check.expect_reject]
        controls = [r for r in results if r.check.expect_reject]
        for family in (positives, controls):
            flat = [p for r in family for p in r.pvalues]
            if not flat:
                continue
            adjusted = adjust_pvalues(flat, method)
            pos = 0
            for result in family:
                n = len(result.pvalues)
                result.adjusted = adjusted[pos:pos + n]
                result.rejected = [a < alpha for a in result.adjusted]
                pos += n
        if OBS.enabled:
            for result in results:
                if not result.passed:
                    reg.counter("verify.failures").inc()
        return BatteryReport(tier=tier, alpha=alpha, method=method,
                             seeds=n_seeds, scale=scale, results=results)


# ----------------------------------------------------------------------
# Seed-sweep asserts for individual tests
# ----------------------------------------------------------------------
@dataclass
class SweepResult:
    """Corrected outcome of one p-value function over several seeds."""

    pvalues: List[float]
    adjusted: List[float]
    alpha: float
    method: str

    @property
    def rejections(self) -> List[bool]:
        """Per-seed rejection flags at the corrected level."""
        return [a < self.alpha for a in self.adjusted]

    @property
    def accepted(self) -> bool:
        """True when no seed rejects (the positive-test condition)."""
        return not any(self.rejections)

    @property
    def all_rejected(self) -> bool:
        """True when every seed rejects (negative-control condition)."""
        return all(self.rejections)

    def describe(self) -> str:
        """One line for assertion messages."""
        cells = ", ".join(
            f"p={p:.3g}->adj {a:.3g}"
            for p, a in zip(self.pvalues, self.adjusted))
        return (f"{self.method}-corrected sweep at alpha={self.alpha}: "
                f"[{cells}]")


def sweep(pvalue_fn: Callable[[SplittableRng], float], *,
          rng: SplittableRng, seeds: int = 5, alpha: float = 1e-4,
          method: str = "holm") -> SweepResult:
    """Run ``pvalue_fn`` over ``seeds`` spawned rngs and correct.

    The test-file counterpart of a battery run: a single statistical
    claim is evaluated on several independent seeds, the p-values are
    adjusted (Holm by default — strict FWER control suits a single
    test's handful of seeds), and the caller asserts on
    :attr:`SweepResult.accepted` / :attr:`SweepResult.all_rejected`
    rather than on any raw p-value.
    """
    if seeds < 1:
        raise ConfigurationError(f"need at least one seed, got {seeds}")
    if not 0.0 < alpha < 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
    pvalues = []
    for s in range(seeds):
        p = float(pvalue_fn(rng.spawn("sweep", s)))
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"seed {s} produced p={p}")
        pvalues.append(p)
    adjusted = adjust_pvalues(pvalues, method)
    return SweepResult(pvalues=pvalues, adjusted=adjusted, alpha=alpha,
                       method=method)

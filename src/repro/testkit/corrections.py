"""Multiple-testing corrections for the statistical battery.

A battery run produces one p-value per (check, seed) pair.  Asserting
each against a fixed threshold inflates the suite-wide false-alarm rate:
with 100 tests at alpha=1e-4 the chance of at least one spurious failure
is ~1%, and it grows with every check added.  Instead the battery pools
every p-value and applies a single correction, so the suite-wide error
rate is configured once:

* :func:`holm_adjust` — Holm's step-down procedure; controls the
  family-wise error rate (probability of *any* false rejection).
  Uniformly more powerful than plain Bonferroni, no independence
  assumptions.
* :func:`bh_adjust` — Benjamini-Hochberg step-up; controls the false
  discovery rate (expected fraction of rejections that are false).
  More powerful when many tests are run; valid under the positive
  dependence typical of overlapping sampler checks.

Both return *adjusted* p-values: rejecting those below alpha gives the
corresponding guarantee at level alpha.  Adjusted values are clamped to
[0, 1] and preserve the monotonicity required by each procedure.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ConfigurationError

__all__ = ["holm_adjust", "bh_adjust", "adjust_pvalues", "METHODS"]

METHODS = ("holm", "bh")


def _validate(pvalues: Sequence[float]) -> List[float]:
    values = list(pvalues)
    if not values:
        raise ConfigurationError("need at least one p-value to adjust")
    for p in values:
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"p-value out of range: {p}")
    return values


def holm_adjust(pvalues: Sequence[float]) -> List[float]:
    """Holm step-down adjusted p-values (FWER control).

    Sort ascending; the i-th smallest (0-based) is multiplied by
    ``m - i``, then a running maximum enforces monotonicity.
    """
    values = _validate(pvalues)
    m = len(values)
    order = sorted(range(m), key=lambda i: values[i])
    adjusted = [0.0] * m
    running = 0.0
    for rank, i in enumerate(order):
        running = max(running, min(1.0, (m - rank) * values[i]))
        adjusted[i] = running
    return adjusted


def bh_adjust(pvalues: Sequence[float]) -> List[float]:
    """Benjamini-Hochberg step-up adjusted p-values (FDR control).

    Sort ascending; the i-th smallest (1-based) is multiplied by
    ``m / i``, then a reverse running minimum enforces monotonicity.
    """
    values = _validate(pvalues)
    m = len(values)
    order = sorted(range(m), key=lambda i: values[i])
    adjusted = [0.0] * m
    running = 1.0
    for rank in range(m - 1, -1, -1):
        i = order[rank]
        running = min(running, min(1.0, values[i] * m / (rank + 1)))
        adjusted[i] = running
    return adjusted


def adjust_pvalues(pvalues: Sequence[float], method: str) -> List[float]:
    """Dispatch to :func:`holm_adjust` or :func:`bh_adjust` by name."""
    if method == "holm":
        return holm_adjust(pvalues)
    if method == "bh":
        return bh_adjust(pvalues)
    raise ConfigurationError(
        f"unknown correction method {method!r}; expected one of {METHODS}")

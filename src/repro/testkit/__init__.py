"""Statistical verification subsystem: the acceptance battery.

The paper's guarantees are statistical — uniformity (Theorem 1), the
eq. (1) footprint bound, the eq. (2)/(3) hypergeometric law — so the
repo's correctness gate must be statistical too, and statistically
*sound*: many tests at a fixed per-test threshold silently inflate the
suite-wide false-alarm rate.  This package provides:

* :class:`Battery` / :class:`Check` — named checks run over a seed
  sweep with one pooled multiple-testing correction
  (:func:`holm_adjust` / :func:`bh_adjust`), so the suite-wide error
  rate is configured once;
* :func:`default_battery` — the standard catalog: sampler uniformity,
  pmf goodness-of-fit, Bernoulli-phase laws, eq. (1) exceedance, the
  Section 3.3 negative controls that must be *rejected*, and exact
  differential checks (executors, merge-tree folds);
* :func:`sweep` — the same seed-sweep-plus-correction discipline for
  individual test files (the RPR051 lint rule rejects bare p-value
  threshold asserts that bypass it);
* text/JSON reporters consumed by the ``repro verify`` CLI.

See ``docs/testing.md`` for the battery design, the fast/deep tiers,
and the flakiness policy.
"""

from repro.testkit.battery import (Battery, BatteryReport, Check,
                                   CheckResult, SweepResult, sweep)
from repro.testkit.checks import (binomial_pmf, collapse_cells,
                                  default_battery)
from repro.testkit.corrections import (adjust_pvalues, bh_adjust,
                                       holm_adjust)
from repro.testkit.differential import (executor_differential,
                                        merge_engine_differential,
                                        merge_tree_differential)
from repro.testkit.reporters import parse_json, render_json, render_text

__all__ = [
    "Battery",
    "BatteryReport",
    "Check",
    "CheckResult",
    "SweepResult",
    "sweep",
    "default_battery",
    "collapse_cells",
    "binomial_pmf",
    "holm_adjust",
    "bh_adjust",
    "adjust_pvalues",
    "executor_differential",
    "merge_engine_differential",
    "merge_tree_differential",
    "render_text",
    "render_json",
    "parse_json",
]

"""Differential checks: independent execution paths must agree exactly.

Statistical checks catch biased laws; differential checks catch broken
plumbing.  Two helpers, both returning lists of failure messages (empty
means agreement):

* :func:`executor_differential` — every ``SampleTask`` must serialize to
  **byte-identical** ``sample_to_dict`` JSON across the Serial, Thread,
  and Process executors.  Each task carries its own seed, so any
  divergence means an executor leaks state between tasks or into them.
* :func:`merge_tree_differential` — serial-fold vs balanced
  ``merge_tree`` on inputs whose merges are deterministic (same-rate SB
  unions; exhaustive unions that stay under the footprint bound).  The
  two fold shapes must yield the **same sample**; comparison is on a
  canonical serialization (histogram pairs sorted) because
  ``CompactHistogram.join`` is free to reorder its insertion-ordered
  backing dict.
* :func:`merge_engine_differential` — every ``merge_tree`` evaluation
  strategy (serial, balanced, parallel-inline, parallel on thread and
  process pools at several worker counts) must produce **byte-identical**
  samples for the same seed, on *any* inputs.  Since every mode
  evaluates the same balanced plan and each node draws from its own
  ``rng.spawn("merge", level, index)`` substream, randomness-consuming
  merges (HB/HR) are covered too — this is the "tree-shape independence"
  invariant of docs/determinism.md, checked exactly rather than in law.
  The sweep runs once per available kernel backend: byte-identity is a
  **per-backend** contract (docs/performance.md), so each backend gets
  its own serial reference and its own mode/executor/worker sweep.
"""

from __future__ import annotations

import json
from typing import List, Optional, Sequence

from repro.core.merge import merge_tree
from repro.core.sample import WarehouseSample
from repro.kernels import available_backends, use_backend
from repro.rng import SplittableRng
from repro.warehouse.parallel import (ProcessExecutor, SampleTask,
                                      SerialExecutor, ThreadExecutor,
                                      sample_partition)
from repro.warehouse.storage import sample_to_dict

__all__ = ["executor_differential", "merge_tree_differential",
           "merge_engine_differential",
           "serialize_exact", "serialize_canonical"]


def serialize_exact(sample: WarehouseSample) -> str:
    """Byte-exact JSON of a sample (histogram in insertion order)."""
    return json.dumps(sample_to_dict(sample), sort_keys=True, default=repr)


def serialize_canonical(sample: WarehouseSample) -> str:
    """Order-insensitive JSON: histogram pairs sorted by value repr."""
    data = sample_to_dict(sample)
    data["histogram"] = sorted(data["histogram"],
                               key=lambda pair: repr(pair[0]))
    return json.dumps(data, sort_keys=True, default=repr)


def executor_differential(tasks: Sequence[SampleTask], *,
                          max_workers: int = 2) -> List[str]:
    """Failure messages when executors disagree on any task.

    Runs the same task list through all three executors and compares
    the byte-exact serialization of every resulting sample against the
    serial reference.
    """
    serial = SerialExecutor().map(sample_partition, tasks)
    reference = [serialize_exact(s) for s in serial]
    failures: List[str] = []
    others = (("thread", ThreadExecutor(max_workers=max_workers)),
              ("process", ProcessExecutor(max_workers=max_workers)))
    for label, executor in others:
        produced = executor.map(sample_partition, tasks)
        if len(produced) != len(tasks):
            failures.append(
                f"{label} executor returned {len(produced)} result(s) "
                f"for {len(tasks)} task(s)")
            continue
        for i, (want, got) in enumerate(
                zip(reference, (serialize_exact(s) for s in produced))):
            if want != got:
                task = tasks[i]
                failures.append(
                    f"{label} executor diverged from serial on task "
                    f"{i} (scheme={task.scheme}, seed={task.seed}): "
                    f"{got} != {want}")
    return failures


def merge_tree_differential(samples: Sequence[WarehouseSample], *,
                            rng: SplittableRng,
                            label: str = "inputs") -> List[str]:
    """Failure messages when serial and balanced folds disagree.

    Only meaningful for inputs whose pairwise merges are deterministic
    (the caller guarantees this); both folds then compute the same
    union sample and must serialize identically after canonicalization.
    """
    serial = merge_tree(samples, rng=rng.spawn("serial"), mode="serial")
    balanced = merge_tree(samples, rng=rng.spawn("balanced"),
                          mode="balanced")
    want = serialize_canonical(serial)
    got = serialize_canonical(balanced)
    if want != got:
        return [f"merge_tree({label}) serial vs balanced diverged: "
                f"{got} != {want}"]
    return []


def merge_engine_differential(samples: Sequence[WarehouseSample], *,
                              rng: SplittableRng,
                              worker_counts: Sequence[int] = (1, 2, 4),
                              backends: Optional[Sequence[str]] = None,
                              label: str = "inputs") -> List[str]:
    """Failure messages unless every merge engine agrees byte-exactly.

    The serial mode is the reference; balanced, executor-less parallel,
    and parallel on thread/process pools at each worker count must all
    serialize identically.  ``rng.spawn`` derives substreams without
    consuming state, so reusing one ``rng`` across runs is sound — all
    runs see the same per-node seeds.

    The whole sweep repeats for each kernel backend in ``backends``
    (default: every backend available in this interpreter).  Each
    backend computes its *own* serial reference — the contract is
    byte-identity across modes/executors/workers *within* a backend,
    not across backends (their draws differ by construction; they
    agree in law, which the statistical battery checks).
    """
    if backends is None:
        backends = available_backends()
    failures: List[str] = []
    for backend in backends:
        with use_backend(backend):
            reference = serialize_exact(merge_tree(samples, rng=rng,
                                                   mode="serial"))
            variants = [("balanced", dict(mode="balanced")),
                        ("parallel/inline", dict(mode="parallel"))]
            for workers in worker_counts:
                variants.append((f"parallel/thread[{workers}]",
                                 dict(mode="parallel",
                                      executor=ThreadExecutor(workers))))
                variants.append((f"parallel/process[{workers}]",
                                 dict(mode="parallel",
                                      executor=ProcessExecutor(workers))))
            for name, kwargs in variants:
                got = serialize_exact(merge_tree(samples, rng=rng,
                                                 **kwargs))
                if got != reference:
                    failures.append(
                        f"merge_tree({label}) {backend}/{name} diverged "
                        f"from serial: {got} != {reference}")
    return failures

"""A correlated star-schema workload ("retail") for realistic demos.

The Section 5 generators (unique / uniform / Zipf) are single columns;
the warehouse's metadata-discovery and multi-dataset scenarios want
*related* columns: keys, foreign keys referencing them, skewed measures.
:class:`RetailWorkload` generates a small star schema with the
relationships downstream examples and tests can assert against:

* ``customers.id`` — a key column (distinct surrogate ids);
* ``orders.id`` — a key column, disjoint id range;
* ``orders.customer_id`` — foreign key into ``customers.id`` with
  Zipf-skewed customer activity (a few customers place most orders);
* ``lineitem.order_id`` — foreign key into ``orders.id``;
* ``lineitem.quantity`` — small uniform integers;
* ``products.price`` — decimal prices (a non-key, non-overlapping
  domain).

All columns are deterministic functions of the seed.  ``truths()``
exposes the exact relationship matrix so discovery results can be
graded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.rng import SplittableRng
from repro.sampling.distributions import ZipfSampler

__all__ = ["RetailWorkload"]

#: Disjoint surrogate-key ranges, as separate sequences would produce.
CUSTOMER_ID_BASE = 1
ORDER_ID_BASE = 10_000_000


@dataclass(frozen=True)
class RetailWorkload:
    """Sizing knobs for the generated star schema.

    Examples
    --------
    >>> w = RetailWorkload(customers=100, orders=300, lineitems=600,
    ...                    products=50)
    >>> cols = w.generate(SplittableRng(1))
    >>> sorted(cols) == ['customers.id', 'lineitem.order_id',
    ...                  'lineitem.quantity', 'orders.customer_id',
    ...                  'orders.id', 'products.price']
    True
    >>> len(cols['orders.customer_id'])
    300
    """

    customers: int = 20_000
    orders: int = 80_000
    lineitems: int = 160_000
    products: int = 5_000
    activity_skew: float = 1.0  # Zipf exponent of customer activity

    def __post_init__(self) -> None:
        for name in ("customers", "orders", "lineitems", "products"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.activity_skew < 0.0:
            raise ConfigurationError("activity_skew must be >= 0")

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(self, rng: SplittableRng) -> Dict[str, List]:
        """All six columns, keyed by ``table.column`` name."""
        customer_ids = [CUSTOMER_ID_BASE + i for i in range(self.customers)]
        order_ids = [ORDER_ID_BASE + i for i in range(self.orders)]

        # Zipf-skewed customer activity: rank r places orders with
        # probability ~ r^-skew over a random customer permutation.
        ranks = ZipfSampler(self.customers, self.activity_skew)
        perm = list(customer_ids)
        rng.spawn("perm").shuffle(perm)
        act_rng = rng.spawn("activity")
        order_customers = [perm[ranks.sample(act_rng) - 1]
                           for _ in range(self.orders)]

        li_rng = rng.spawn("lineitems")
        lineitem_orders = [order_ids[li_rng.randrange(self.orders)]
                           for _ in range(self.lineitems)]
        qty_rng = rng.spawn("quantity")
        quantities = [1 + qty_rng.randrange(10)
                      for _ in range(self.lineitems)]

        price_rng = rng.spawn("prices")
        prices = [price_rng.randrange(101, 49_999) / 100
                  for _ in range(self.products)]

        return {
            "customers.id": customer_ids,
            "orders.id": order_ids,
            "orders.customer_id": order_customers,
            "lineitem.order_id": lineitem_orders,
            "lineitem.quantity": quantities,
            "products.price": prices,
        }

    def ingest_into(self, warehouse, rng: SplittableRng, *,
                    partitions: int = 2) -> Dict[str, List]:
        """Generate and batch-ingest every column; returns the columns."""
        columns = self.generate(rng)
        for name, values in sorted(columns.items()):
            warehouse.ingest_batch(name, values, partitions=partitions)
        return columns

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------
    @staticmethod
    def foreign_keys() -> List[Tuple[str, str]]:
        """The true FK -> key relationships, for grading discovery."""
        return [
            ("orders.customer_id", "customers.id"),
            ("lineitem.order_id", "orders.id"),
        ]

    @staticmethod
    def key_columns() -> List[str]:
        """Columns whose values are unique per row."""
        return ["customers.id", "orders.id"]

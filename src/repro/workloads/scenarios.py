"""The Section 5 experiment grid.

"We also considered six population sizes ranging from 2^20 through 2^26
and eleven partitioning schemes ranging from a single partition to 1024
partitions, for a total of 198 test scenarios."  (6 sizes x 11
partitionings x 3 distributions = 198.)

:func:`paper_scenarios` enumerates the grid (optionally scaled down so
the full sweep fits a laptop budget), and :class:`Scenario` carries one
cell's parameters plus helpers to materialize its data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.rng import SplittableRng
from repro.workloads.generators import DISTRIBUTIONS, make_generator

__all__ = ["Scenario", "paper_scenarios", "PAPER_POPULATION_SIZES",
           "PAPER_PARTITION_COUNTS"]

#: Six population sizes, 2^20 .. 2^26 (log-spaced; the paper lists the
#: endpoints; we take even exponent steps plus both endpoints: 2^20,
#: 2^21, ..., matching "six sizes ranging from 2^20 through 2^26" as
#: closely as six log-spaced values allow).
PAPER_POPULATION_SIZES = tuple(2 ** e for e in (20, 21, 22, 23, 24, 26))

#: Eleven partition counts: 1, 2, 4, ..., 1024.
PAPER_PARTITION_COUNTS = tuple(2 ** e for e in range(11))

#: The paper's per-partition element count in the scaleup and sample-size
#: experiments (32K) and the corresponding sample bound (8192).
PAPER_SCALEUP_PARTITION_SIZE = 32 * 1024
PAPER_BOUND_VALUES = 8192


@dataclass(frozen=True)
class Scenario:
    """One cell of the experiment grid.

    Examples
    --------
    >>> s = Scenario("unique", population_size=1024, partitions=4)
    >>> len(s.partition_values(SplittableRng(1)))
    4
    """

    distribution: str
    population_size: int
    partitions: int

    def __post_init__(self) -> None:
        if self.distribution not in DISTRIBUTIONS:
            raise ConfigurationError(
                f"unknown distribution {self.distribution!r}")
        if self.population_size <= 0:
            raise ConfigurationError(
                f"population_size must be positive, "
                f"got {self.population_size}")
        if self.partitions <= 0:
            raise ConfigurationError(
                f"partitions must be positive, got {self.partitions}")
        if self.partitions > self.population_size:
            raise ConfigurationError(
                f"cannot split {self.population_size} elements into "
                f"{self.partitions} partitions")

    @property
    def partition_size(self) -> int:
        """Elements per partition (last partition absorbs the remainder)."""
        return self.population_size // self.partitions

    def values(self, rng: SplittableRng) -> List[int]:
        """The full data set for this scenario."""
        generator = make_generator(self.distribution)
        return generator.generate(self.population_size,
                                  rng.spawn("data", self.distribution,
                                            self.population_size))

    def partition_values(self, rng: SplittableRng) -> List[List[int]]:
        """The data set divided into this scenario's partitions."""
        from repro.warehouse.ingest import split_batch

        data = self.values(rng)
        return [list(chunk) for chunk in split_batch(data, self.partitions)]

    def label(self) -> str:
        """Compact display label, e.g. ``unique/2^20/64p``."""
        exp = self.population_size.bit_length() - 1
        pop = (f"2^{exp}" if self.population_size == 2 ** exp
               else str(self.population_size))
        return f"{self.distribution}/{pop}/{self.partitions}p"


def paper_scenarios(*, distributions: Sequence[str] = DISTRIBUTIONS,
                    population_sizes: Optional[Sequence[int]] = None,
                    partition_counts: Optional[Sequence[int]] = None,
                    max_population: Optional[int] = None
                    ) -> Iterator[Scenario]:
    """Enumerate the (optionally restricted) Section 5 grid.

    ``max_population`` caps the population sizes (for laptop-scale runs);
    partition counts exceeding a population are skipped, matching the
    grid's implicit constraint.
    """
    sizes = population_sizes or PAPER_POPULATION_SIZES
    counts = partition_counts or PAPER_PARTITION_COUNTS
    for dist in distributions:
        for pop in sizes:
            if max_population is not None and pop > max_population:
                continue
            for parts in counts:
                if parts > pop:
                    continue
                yield Scenario(dist, pop, parts)

"""The paper's three data distributions (Section 5).

"We considered three kinds of data sets: a set of unique integers between
1 and the population size, a set of data values that are uniformly
distributed over the range 1 to 1,000,000, and a set of integer values
over the range of 1 to 4000 having a Zipf distribution."

Each generator produces a full data set as a list (for batch ingest) or
lazily (for streams), deterministically from a seed.  The unique data set
is shuffled so that contiguous batch partitions are not trivially sorted
ranges.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import ConfigurationError
from repro.rng import SplittableRng
from repro.sampling.distributions import ZipfSampler

__all__ = ["UniqueGenerator", "UniformGenerator", "ZipfGenerator",
           "make_generator", "DISTRIBUTIONS"]

#: Uniform workload value range (paper: 1..1,000,000).
UNIFORM_VALUE_RANGE = 1_000_000
#: Zipf workload value range (paper: 1..4000).
ZIPF_VALUE_RANGE = 4_000


class UniqueGenerator:
    """All-distinct integers ``1..n`` in random order.

    Examples
    --------
    >>> from repro.rng import SplittableRng
    >>> g = UniqueGenerator()
    >>> sorted(g.generate(5, SplittableRng(1)))
    [1, 2, 3, 4, 5]
    """

    name = "unique"

    def generate(self, n: int, rng: SplittableRng) -> List[int]:
        """A shuffled permutation of ``1..n``."""
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        values = list(range(1, n + 1))
        rng.shuffle(values)
        return values

    def stream(self, n: int, rng: SplittableRng) -> Iterator[int]:
        """Lazy variant (materializes internally; uniqueness needs it)."""
        return iter(self.generate(n, rng))


class UniformGenerator:
    """I.i.d. integers uniform on ``1..value_range`` (default 1e6)."""

    name = "uniform"

    def __init__(self, value_range: int = UNIFORM_VALUE_RANGE) -> None:
        if value_range <= 0:
            raise ConfigurationError(
                f"value_range must be positive, got {value_range}")
        self._range = value_range

    def generate(self, n: int, rng: SplittableRng) -> List[int]:
        """``n`` i.i.d. uniform draws."""
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        r = self._range
        randrange = rng.randrange
        return [randrange(r) + 1 for _ in range(n)]

    def stream(self, n: int, rng: SplittableRng) -> Iterator[int]:
        """Lazy variant."""
        r = self._range
        for _ in range(n):
            yield rng.randrange(r) + 1


class ZipfGenerator:
    """I.i.d. Zipf-distributed integers on ``1..value_range``
    (default 1..4000, exponent 1)."""

    name = "zipfian"

    def __init__(self, value_range: int = ZIPF_VALUE_RANGE,
                 exponent: float = 1.0) -> None:
        self._sampler = ZipfSampler(value_range, exponent)

    def generate(self, n: int, rng: SplittableRng) -> List[int]:
        """``n`` i.i.d. Zipf draws."""
        if n < 0:
            raise ConfigurationError(f"n must be >= 0, got {n}")
        return self._sampler.sample_many(n, rng)

    def stream(self, n: int, rng: SplittableRng) -> Iterator[int]:
        """Lazy variant."""
        sample = self._sampler.sample
        for _ in range(n):
            yield sample(rng)


DISTRIBUTIONS = ("unique", "uniform", "zipfian")


def make_generator(name: str):
    """Generator instance for a distribution name.

    Examples
    --------
    >>> make_generator("unique").name
    'unique'
    """
    if name == "unique":
        return UniqueGenerator()
    if name == "uniform":
        return UniformGenerator()
    if name == "zipfian":
        return ZipfGenerator()
    raise ConfigurationError(
        f"unknown distribution {name!r}; expected one of {DISTRIBUTIONS}")

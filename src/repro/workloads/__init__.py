"""Workload generators and the Section 5 experiment grid."""

from repro.workloads.generators import (UniformGenerator, UniqueGenerator,
                                        ZipfGenerator, make_generator)
from repro.workloads.retail import RetailWorkload
from repro.workloads.scenarios import (PAPER_PARTITION_COUNTS,
                                       PAPER_POPULATION_SIZES, Scenario,
                                       paper_scenarios)

__all__ = [
    "RetailWorkload",
    "UniqueGenerator",
    "UniformGenerator",
    "ZipfGenerator",
    "make_generator",
    "Scenario",
    "paper_scenarios",
    "PAPER_POPULATION_SIZES",
    "PAPER_PARTITION_COUNTS",
]

"""Small summary-statistics helpers shared by tests and benches."""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ConfigurationError

__all__ = ["mean", "stdev", "sem", "relative_error", "coefficient_of_variation"]


def mean(xs: Sequence[float]) -> float:
    """Arithmetic mean (raises on empty input)."""
    if not xs:
        raise ConfigurationError("mean of empty sequence")
    return math.fsum(xs) / len(xs)


def stdev(xs: Sequence[float]) -> float:
    """Sample standard deviation (n-1 denominator); 0.0 for length-1."""
    n = len(xs)
    if n == 0:
        raise ConfigurationError("stdev of empty sequence")
    if n == 1:
        return 0.0
    m = mean(xs)
    return math.sqrt(math.fsum((x - m) ** 2 for x in xs) / (n - 1))


def sem(xs: Sequence[float]) -> float:
    """Standard error of the mean."""
    return stdev(xs) / math.sqrt(len(xs))


def relative_error(estimate: float, truth: float) -> float:
    """``|estimate - truth| / |truth|`` (truth of 0 compares absolutely)."""
    if truth == 0.0:
        return abs(estimate)
    return abs(estimate - truth) / abs(truth)


def coefficient_of_variation(xs: Sequence[float]) -> float:
    """``stdev / mean`` — the sample-size stability metric of Figs 15-16."""
    m = mean(xs)
    if m == 0.0:
        return 0.0
    return stdev(xs) / abs(m)

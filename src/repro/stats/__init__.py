"""Statistical testing utilities: uniformity checks for sampling schemes
and small summary helpers used by tests and the bench harness."""

from repro.stats.summaries import mean, relative_error, stdev
from repro.stats.uniformity import (chi_square_homogeneity,
                                    chi_square_pvalue,
                                    concise_nonuniformity_demo,
                                    inclusion_frequency_test,
                                    subset_frequency_test)

__all__ = [
    "chi_square_pvalue",
    "chi_square_homogeneity",
    "inclusion_frequency_test",
    "subset_frequency_test",
    "concise_nonuniformity_demo",
    "mean",
    "stdev",
    "relative_error",
]

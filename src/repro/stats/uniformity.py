"""Empirical uniformity testing for sampling schemes.

A sampling scheme is *uniform* when all same-size samples of a population
are equally likely (Section 3).  These helpers turn that definition into
statistical acceptance tests used throughout the test suite:

* :func:`inclusion_frequency_test` — over many runs, every element of the
  population must be included equally often; chi-square on the per-element
  inclusion counts.
* :func:`subset_frequency_test` — stronger: conditioned on a sample size
  ``k``, every ``k``-subset must be realized equally often; chi-square
  over all ``C(n, k)`` subsets (small populations only).
* :func:`concise_nonuniformity_demo` — the Section 3.3 counter-example:
  population ``a,a,a,b,b,b`` with room for one ``(value, count)`` pair;
  concise sampling can produce ``{(a,3)}`` and ``{(b,3)}`` but *never*
  ``{(a,2), b}``, so it cannot be uniform.

The chi-square p-value is computed with a pure-Python regularized
incomplete gamma (series + continued fraction), keeping the core library
dependency-free; tests cross-check it against SciPy.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Dict, Iterable, List, Sequence

from repro.core.concise import ConciseSampler
from repro.core.footprint import FootprintModel
from repro.errors import ConfigurationError
from repro.rng import SplittableRng

__all__ = ["chi_square_pvalue", "chi_square_homogeneity",
           "regularized_gamma_q",
           "inclusion_frequency_test", "subset_frequency_test",
           "concise_nonuniformity_demo"]


# ----------------------------------------------------------------------
# Chi-square machinery
# ----------------------------------------------------------------------
def _gamma_p_series(a: float, x: float, epsilon: float = 1e-14,
                    max_iterations: int = 10_000) -> float:
    """Lower regularized gamma P(a, x) by series (x < a + 1)."""
    term = 1.0 / a
    total = term
    n = a
    for _ in range(max_iterations):
        n += 1.0
        term *= x / n
        total += term
        if abs(term) < abs(total) * epsilon:
            break
    return total * math.exp(-x + a * math.log(x) - math.lgamma(a))


def _gamma_q_cf(a: float, x: float, epsilon: float = 1e-14,
                max_iterations: int = 10_000) -> float:
    """Upper regularized gamma Q(a, x) by continued fraction (x >= a+1)."""
    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, max_iterations + 1):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < epsilon:
            break
    return h * math.exp(-x + a * math.log(x) - math.lgamma(a))


def regularized_gamma_q(a: float, x: float) -> float:
    """Upper regularized incomplete gamma ``Q(a, x) = 1 - P(a, x)``."""
    if a <= 0.0:
        raise ConfigurationError(f"a must be positive, got {a}")
    if x < 0.0:
        raise ConfigurationError(f"x must be >= 0, got {x}")
    if x == 0.0:
        return 1.0
    if x < a + 1.0:
        return 1.0 - _gamma_p_series(a, x)
    return _gamma_q_cf(a, x)


def chi_square_pvalue(observed: Sequence[float],
                      expected: Sequence[float]) -> float:
    """P-value of Pearson's chi-square goodness-of-fit test.

    ``observed`` and ``expected`` must have equal length; cells with zero
    expectation are rejected (collapse them first).
    """
    if len(observed) != len(expected):
        raise ConfigurationError(
            f"length mismatch: {len(observed)} observed vs "
            f"{len(expected)} expected")
    if len(observed) < 2:
        raise ConfigurationError("need at least two cells")
    stat = 0.0
    for o, e in zip(observed, expected):
        if e <= 0.0:
            raise ConfigurationError(
                "expected counts must be positive; collapse empty cells")
        stat += (o - e) ** 2 / e
    dof = len(observed) - 1
    return regularized_gamma_q(dof / 2.0, stat / 2.0)


def chi_square_homogeneity(counts_a: Sequence[float],
                           counts_b: Sequence[float]) -> float:
    """P-value that two count vectors are draws from the same law.

    Pearson's chi-square test of homogeneity on the 2-by-``n``
    contingency table whose rows are ``counts_a`` and ``counts_b``.
    Columns that are empty in both rows carry no information and are
    dropped; at least two informative columns must remain.  Used by the
    testkit to compare serial-fold vs balanced ``merge_tree`` inclusion
    frequencies without assuming either is the reference law.
    """
    if len(counts_a) != len(counts_b):
        raise ConfigurationError(
            f"length mismatch: {len(counts_a)} vs {len(counts_b)} cells")
    cols = [(a, b) for a, b in zip(counts_a, counts_b) if a + b > 0]
    if len(cols) < 2:
        raise ConfigurationError(
            "need at least two non-empty columns for homogeneity")
    row_a = sum(a for a, _ in cols)
    row_b = sum(b for _, b in cols)
    if row_a <= 0 or row_b <= 0:
        raise ConfigurationError("each row needs a positive total")
    grand = row_a + row_b
    stat = 0.0
    for a, b in cols:
        col = a + b
        for observed, row in ((a, row_a), (b, row_b)):
            expected = row * col / grand
            stat += (observed - expected) ** 2 / expected
    dof = len(cols) - 1
    return regularized_gamma_q(dof / 2.0, stat / 2.0)


# ----------------------------------------------------------------------
# Uniformity tests
# ----------------------------------------------------------------------
SampleFn = Callable[[Sequence[object], SplittableRng], Iterable[object]]


def inclusion_frequency_test(sample_fn: SampleFn,
                             population: Sequence[object],
                             trials: int,
                             rng: SplittableRng) -> float:
    """P-value that all elements are included equally often.

    ``sample_fn(population, rng)`` must return the sampled values of one
    run (with multiplicity).  The population must consist of distinct
    values so occurrences can be attributed to elements.
    """
    values = list(population)
    if len(set(values)) != len(values):
        raise ConfigurationError(
            "inclusion test needs distinct population values")
    counts: Dict[object, int] = {v: 0 for v in values}
    total = 0
    for t in range(trials):
        for v in sample_fn(values, rng.spawn("trial", t)):
            counts[v] += 1
            total += 1
    if total == 0:
        raise ConfigurationError("sampler never included anything")
    expected = [total / len(values)] * len(values)
    return chi_square_pvalue([counts[v] for v in values], expected)


def subset_frequency_test(sample_fn: SampleFn,
                          population: Sequence[object],
                          size: int,
                          trials: int,
                          rng: SplittableRng) -> float:
    """P-value that all ``size``-subsets are equally likely.

    Runs the sampler ``trials`` times, keeps the runs whose sample has
    exactly ``size`` (distinct) elements, and chi-squares the realized
    subset frequencies against the uniform law over all ``C(n, size)``
    subsets.  Population must be small (the subset space is enumerated).
    """
    values = list(population)
    if len(set(values)) != len(values):
        raise ConfigurationError(
            "subset test needs distinct population values")
    space: List[frozenset] = [frozenset(c) for c in
                              itertools.combinations(values, size)]
    index = {s: i for i, s in enumerate(space)}
    observed = [0] * len(space)
    kept = 0
    for t in range(trials):
        sample = list(sample_fn(values, rng.spawn("trial", t)))
        if len(sample) != size:
            continue
        key = frozenset(sample)
        if len(key) != size:  # duplicates cannot occur for distinct values
            continue
        observed[index[key]] += 1
        kept += 1
    if kept < 5 * len(space):
        raise ConfigurationError(
            f"only {kept} usable runs for {len(space)} subsets; "
            f"increase trials")
    expected = [kept / len(space)] * len(space)
    return chi_square_pvalue(observed, expected)


# ----------------------------------------------------------------------
# The Section 3.3 counter-example
# ----------------------------------------------------------------------
def concise_nonuniformity_demo(trials: int, rng: SplittableRng,
                               ) -> Dict[str, int]:
    """Reproduce the Section 3.3 worked example.

    Population ``a,a,a,b,b,b`` with a concise-sampling footprint that
    holds at most one ``(value, count)`` pair.  Counts how often the
    final sample equals each of the paper's three candidate histograms:

    * ``H1 = {(a,3)}`` — occurs with positive probability;
    * ``H2 = {(b,3)}`` — occurs with positive probability;
    * ``H3 = {(a,2), b}`` — can *never* occur (footprint too large),
      although under uniformity it would have to be 9x as likely as H1.

    Returns ``{"H1": ..., "H2": ..., "H3": ..., "other": ...}``.
    """
    model = FootprintModel(value_bytes=8, count_bytes=4)
    capacity = model.value_bytes + model.count_bytes  # one pair: 12 bytes
    population = ["a", "a", "a", "b", "b", "b"]
    counts = {"H1": 0, "H2": 0, "H3": 0, "other": 0}
    for t in range(trials):
        sampler = ConciseSampler(footprint_bytes=capacity,
                                 rng=rng.spawn("concise", t), model=model)
        sampler.feed_many(population)
        hist = sampler.finalize()
        pairs = dict(hist.pairs())
        if pairs == {"a": 3}:
            counts["H1"] += 1
        elif pairs == {"b": 3}:
            counts["H2"] += 1
        elif pairs in ({"a": 2, "b": 1}, {"a": 1, "b": 2}):
            counts["H3"] += 1
        else:
            counts["other"] += 1
    return counts

"""A constant-value virtual sequence, for feeding histogram runs.

The merge procedures stream the contents of a compact sample into a
running sampler "without requiring expansion" (Figures 6 and 8).  A
:class:`RepeatedValue` presents ``count`` copies of one value through the
sequence protocol, so the samplers' skip-based fast paths can jump across
the run in O(#inclusions) time without materializing it.
"""

from __future__ import annotations

from typing import Hashable

from repro.errors import ConfigurationError

__all__ = ["RepeatedValue"]


class RepeatedValue:
    """``count`` copies of ``value`` behind ``__len__``/``__getitem__``.

    Examples
    --------
    >>> r = RepeatedValue("x", 3)
    >>> len(r), r[0], r[2]
    (3, 'x', 'x')
    """

    __slots__ = ("value", "count")

    def __init__(self, value: Hashable, count: int) -> None:
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        self.value = value
        self.count = count

    def __len__(self) -> int:
        return self.count

    def __getitem__(self, index: int) -> Hashable:
        if isinstance(index, slice):
            start, stop, step = index.indices(self.count)
            if step != 1:
                raise ConfigurationError(
                    "RepeatedValue slices must have step 1")
            return RepeatedValue(self.value, max(0, stop - start))
        if not -self.count <= index < self.count:
            raise IndexError(index)
        return self.value

    def __iter__(self):
        for _ in range(self.count):
            yield self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RepeatedValue({self.value!r}, {self.count})"

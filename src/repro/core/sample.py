"""The sample object stored in (and retrieved from) the sample warehouse.

A :class:`WarehouseSample` bundles a compact histogram with the metadata
the merge procedures of Figures 6 and 8 require:

* the **kind** — what the sample statistically is (exhaustive / Bernoulli /
  reservoir), i.e. the final phase of the producing algorithm;
* the **population size** ``|D|`` of the parent partition (or union of
  partitions) it was drawn from;
* the Bernoulli **rate** ``q`` (kind = BERNOULLI only);
* the footprint **bound** (``n_F`` values / ``F`` bytes under a
  :class:`~repro.core.footprint.FootprintModel`) it was collected under;
* the producing **scheme** ("hb", "hr", "sb") and the target exceedance
  probability ``p`` (HB only) — needed so merges can recompute rates.

Samples are immutable from the caller's perspective; merge functions build
new ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.core.footprint import DEFAULT_MODEL, FootprintModel
from repro.core.histogram import CompactHistogram
from repro.core.phases import SampleKind
from repro.errors import ConfigurationError

__all__ = ["WarehouseSample"]


@dataclass(frozen=True)
class WarehouseSample:
    """A finished, mergeable, footprint-bounded uniform sample.

    Examples
    --------
    >>> h = CompactHistogram.from_values([1, 1, 2])
    >>> s = WarehouseSample(histogram=h, kind=SampleKind.EXHAUSTIVE,
    ...                     population_size=3, bound_values=100)
    >>> s.size, s.scale_factor
    (3, 1.0)
    """

    #: The sample contents in compact (value, count) form.
    histogram: CompactHistogram
    #: What the sample statistically is (final phase of the sampler).
    kind: SampleKind
    #: |D|: number of data elements in the parent partition(s).
    population_size: int
    #: n_F: the value-count bound the sample was collected under.
    bound_values: int
    #: Bernoulli rate q; required iff kind is BERNOULLI.
    rate: Optional[float] = None
    #: Producing scheme: "hb", "hr", "sb", or "merge" products thereof.
    scheme: str = "hb"
    #: Target exceedance probability used to pick q (HB family).
    exceedance_p: float = 0.001
    #: Storage model for footprint accounting.
    model: FootprintModel = field(default=DEFAULT_MODEL)

    def __post_init__(self) -> None:
        if self.population_size < 0:
            raise ConfigurationError(
                f"population_size must be >= 0, got {self.population_size}")
        if self.bound_values <= 0:
            raise ConfigurationError(
                f"bound_values must be positive, got {self.bound_values}")
        if self.kind is SampleKind.BERNOULLI:
            if self.rate is None or not 0.0 < self.rate <= 1.0:
                raise ConfigurationError(
                    f"Bernoulli sample needs a rate in (0, 1], "
                    f"got {self.rate}")
        if self.kind is SampleKind.EXHAUSTIVE \
                and self.histogram.size != self.population_size:
            raise ConfigurationError(
                f"exhaustive sample must contain the whole partition: "
                f"got {self.histogram.size} elements for population "
                f"{self.population_size}")
        if self.histogram.size > self.population_size:
            raise ConfigurationError(
                f"sample of {self.histogram.size} elements cannot come from "
                f"a population of {self.population_size}")

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of data elements in the sample."""
        return self.histogram.size

    @property
    def distinct(self) -> int:
        """Number of distinct values in the sample."""
        return self.histogram.distinct

    @property
    def footprint_bytes(self) -> int:
        """Current storage footprint of the compact representation."""
        return self.histogram.footprint(self.model)

    @property
    def bound_bytes(self) -> int:
        """F: the byte bound corresponding to :attr:`bound_values`."""
        return self.model.footprint_for_values(self.bound_values)

    @property
    def scale_factor(self) -> float:
        """Multiplier from sample-level totals to population-level totals.

        * exhaustive: 1
        * Bernoulli(q): 1/q  (Horvitz–Thompson)
        * reservoir of size k from N: N/k
        """
        if self.kind is SampleKind.EXHAUSTIVE:
            return 1.0
        if self.kind is SampleKind.BERNOULLI:
            assert self.rate is not None
            return 1.0 / self.rate
        if self.size == 0:
            return 0.0
        return self.population_size / self.size

    @property
    def sampling_fraction(self) -> float:
        """Realized fraction of the parent data present in the sample."""
        if self.population_size == 0:
            return 1.0
        return self.size / self.population_size

    def values(self) -> List[object]:
        """The sample as an expanded bag of values."""
        return self.histogram.expand()

    def with_scheme(self, scheme: str) -> "WarehouseSample":
        """A copy relabelled with a different producing scheme."""
        return replace(self, scheme=scheme)

    def check_invariants(self) -> None:
        """Assert the bounded-footprint contract; raises on violation.

        * non-exhaustive samples hold at most ``bound_values`` elements;
        * every sample's compact footprint is at most ``F`` bytes, except
          an exhaustive sample exactly at the switch boundary.
        """
        if self.kind is not SampleKind.EXHAUSTIVE \
                and self.size > self.bound_values:
            raise ConfigurationError(
                f"{self.kind.name} sample of {self.size} elements exceeds "
                f"bound of {self.bound_values}")
        if self.footprint_bytes > self.bound_bytes:
            raise ConfigurationError(
                f"sample footprint {self.footprint_bytes} exceeds bound "
                f"{self.bound_bytes}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rate = f", rate={self.rate:.6g}" if self.rate is not None else ""
        return (f"WarehouseSample(kind={self.kind.name}, size={self.size}, "
                f"population={self.population_size}, "
                f"bound={self.bound_values}{rate}, scheme={self.scheme!r})")

"""Merging partition samples into uniform samples of partition unions.

This module implements the paper's two merge procedures plus the plumbing
a warehouse needs around them:

* :func:`hb_merge` — Figure 6 (``HBMerge``).  Merges two Algorithm-HB
  samples of disjoint partitions.  The common fast path (both inputs
  Bernoulli) equalizes rates by Bernoulli purging and joins the compact
  histograms; overflow falls back to a reservoir subsample of the
  concatenation; exhaustive inputs are streamed through a resumed
  Algorithm HB.
* :func:`hr_merge` — Figure 8 (``HRMerge``).  Merges two simple random
  samples by drawing the take-from-the-first count ``L`` from the
  hypergeometric law of eq. (2) (Theorem 1: the result is a simple random
  sample of size ``k = min(|S1|, |S2|)`` from the union).
* :func:`merge_samples` — scheme-aware dispatch used by the warehouse.
* :func:`sb_union` — Algorithm SB's plain union (with rate equalization
  when partitions were sampled at different rates).
* :func:`merge_tree` — fold many per-partition samples into one over a
  balanced binary plan whose nodes draw from independent RNG substreams
  (``rng.spawn("merge", level, index)``), so the merged sample is a pure
  function of the inputs and the seed — independent of evaluation order,
  executor, and worker count.  ``mode="parallel"`` evaluates each level
  concurrently through a warehouse executor.

All merges require the parent partitions to be **disjoint**; the library
cannot verify disjointness from the samples alone, so the warehouse layer
is responsible for only merging samples of distinct partitions.

The randomized inner loops (the eq. (2) draw here, the purges it calls)
dispatch through :mod:`repro.kernels`, so a merge runs vectorized on
the numpy backend and byte-identically to the historical code on the
pure-Python fallback; see docs/performance.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.histogram import CompactHistogram
from repro.core.hybrid_bernoulli import AlgorithmHB
from repro.core.hybrid_reservoir import AlgorithmHR
from repro.core.phases import SampleKind
from repro.core.purge import (purge_bernoulli, purge_reservoir,
                              purge_reservoir_concat)
from repro.core.sample import WarehouseSample
from repro.errors import ConfigurationError, IncompatibleSamplesError
from repro.kernels import active_backend, draw_hypergeometric, use_backend
from repro.obs.clock import monotonic
from repro.obs.runtime import OBS
from repro.obs.tracing import traced
from repro.rng import SplittableRng
from repro.sampling.distributions import CachedHypergeometric
from repro.sampling.exceedance import rate_for_bound

__all__ = ["hb_merge", "hr_merge", "merge_samples", "sb_union", "merge_tree"]

MergeFn = Callable[[WarehouseSample, WarehouseSample], WarehouseSample]


def _check_compatible(s1: WarehouseSample, s2: WarehouseSample) -> None:
    if s1.model != s2.model:
        raise IncompatibleSamplesError(
            f"samples use different footprint models: {s1.model} vs "
            f"{s2.model}")
    if s1.bound_values != s2.bound_values:
        raise IncompatibleSamplesError(
            f"samples have different bounds: n_F={s1.bound_values} vs "
            f"{s2.bound_values}; re-bound one of them before merging")


def _resume_feed(sampler, exhaustive: WarehouseSample) -> None:
    """Stream an exhaustive sample's values through a resumed sampler.

    Values are fed as runs straight off the compact representation — the
    "no expansion of S_i is required" remark under Figure 6.
    """
    for value, count in exhaustive.histogram.pairs():
        sampler.feed_run(value, count)


@traced("merge.hb", timer="merge.hb.seconds")
def hb_merge(s1: WarehouseSample, s2: WarehouseSample, *,
             rng: SplittableRng,
             exceedance_p: Optional[float] = None,
             rate_method: str = "auto",
             hyper_cache: Optional[CachedHypergeometric] = None
             ) -> WarehouseSample:
    """Figure 6: merge two Algorithm-HB samples of disjoint partitions.

    Parameters
    ----------
    s1, s2:
        The input samples.  Any combination of kinds is accepted.
    rng:
        Randomness source for the purges and draws.
    exceedance_p:
        Target exceedance probability for the recomputed rate; defaults
        to the smaller of the inputs' recorded values.
    rate_method:
        Passed to :func:`~repro.sampling.exceedance.rate_for_bound`.
    hyper_cache:
        Optional alias-table cache for the reservoir fallback path.

    Returns a sample of the union with ``scheme="hb"``.
    """
    _check_compatible(s1, s2)
    if OBS.enabled:
        OBS.registry.counter("merge.hb").inc()
    p = exceedance_p
    if p is None:
        p = min(s1.exceedance_p, s2.exceedance_p)
    total = s1.population_size + s2.population_size
    bound = s1.bound_values

    # Lines 1-4: at least one exhaustive sample -> stream it through a
    # resumed Algorithm HB initialized with the other sample.
    if s1.kind.is_exhaustive or s2.kind.is_exhaustive:
        exhaustive, other = (s1, s2) if s1.kind.is_exhaustive else (s2, s1)
        sampler = AlgorithmHB.resume(other, total, rng=rng,
                                     rate_method=rate_method)
        _resume_feed(sampler, exhaustive)
        return sampler.finalize().with_scheme("hb")

    # Lines 5-7: at least one reservoir sample -> hypergeometric merge
    # (the non-reservoir input is viewed as a conditional SRS of its size).
    if s1.kind.is_reservoir or s2.kind.is_reservoir:
        return hr_merge(s1, s2, rng=rng, cache=hyper_cache,
                        scheme="hb")

    # Lines 8-16: both Bernoulli.
    assert s1.rate is not None and s2.rate is not None
    q = rate_for_bound(total, p, bound, method=rate_method)
    sub1 = purge_bernoulli(s1.histogram, min(1.0, q / s1.rate), rng)
    sub2 = purge_bernoulli(s2.histogram, min(1.0, q / s2.rate), rng)
    model = s1.model
    bound_bytes = model.footprint_for_values(bound)
    joined_size = sub1.size + sub2.size
    if (joined_size <= bound
            and sub1.joined_footprint(sub2, model) <= bound_bytes):
        return WarehouseSample(
            histogram=sub1.join(sub2),
            kind=SampleKind.BERNOULLI,
            population_size=total,
            bound_values=bound,
            rate=q,
            scheme="hb",
            exceedance_p=p,
            model=model,
        )
    # Low-probability overflow: reservoir-subsample the concatenation.
    if OBS.enabled:
        OBS.registry.counter("merge.hb.overflow").inc()
    histogram = purge_reservoir_concat(sub1, sub2, bound, rng)
    return WarehouseSample(
        histogram=histogram,
        kind=SampleKind.RESERVOIR,
        population_size=total,
        bound_values=bound,
        scheme="hb",
        exceedance_p=p,
        model=model,
    )


@traced("merge.hr", timer="merge.hr.seconds")
def hr_merge(s1: WarehouseSample, s2: WarehouseSample, *,
             rng: SplittableRng,
             target_size: Optional[int] = None,
             method: str = "inversion",
             cache: Optional[CachedHypergeometric] = None,
             scheme: str = "hr") -> WarehouseSample:
    """Figure 8: merge two simple random samples of disjoint partitions.

    Draws ``L`` from the hypergeometric distribution of eq. (2), takes a
    simple random subsample of ``L`` values from ``s1`` and ``k - L`` from
    ``s2`` (Figure 4), and joins them.  By Theorem 1 the result is a
    simple random sample of size ``k`` from the union.

    Parameters
    ----------
    target_size:
        The merged size ``k``; defaults to ``min(|S1|, |S2|)`` (the
        largest size the theorem supports).  May be any value in
        ``1..min(|S1|, |S2|)``.
    method:
        ``"inversion"`` (default) or ``"alias"`` for the ``L`` draw; a
        ``cache`` (see :class:`CachedHypergeometric`) overrides both and
        should be supplied when many merges share the same sizes.  Both
        knobs steer the pure-Python kernel backend only — the numpy
        backend draws through its own cached cumulative pmf (see
        :func:`repro.kernels.draw_hypergeometric`).
    scheme:
        Scheme label for the output (``hb_merge`` routes mixed merges
        here and wants the result to stay labelled ``"hb"``).
    """
    _check_compatible(s1, s2)
    total = s1.population_size + s2.population_size
    if OBS.enabled:
        OBS.registry.counter("merge.hr").inc()

    if s1.kind.is_exhaustive or s2.kind.is_exhaustive:
        exhaustive, other = (s1, s2) if s1.kind.is_exhaustive else (s2, s1)
        if other.kind.is_bernoulli:
            raise IncompatibleSamplesError(
                "hr_merge cannot resume from a Bernoulli sample; use "
                "hb_merge or merge_samples for mixed-scheme inputs")
        sampler = AlgorithmHR.resume(other, rng=rng)
        _resume_feed(sampler, exhaustive)
        return sampler.finalize().with_scheme(scheme)

    k = min(s1.size, s2.size) if target_size is None else target_size
    if not 0 <= k <= min(s1.size, s2.size):
        raise ConfigurationError(
            f"target_size must be in 0..{min(s1.size, s2.size)}, got {k}")
    if k == 0:
        # One input sampled nothing (possible for a tiny Bernoulli
        # sample); the theorem's min-size rule makes the merged sample
        # empty — trivially uniform.  Callers can detect it via size.
        return WarehouseSample(
            histogram=CompactHistogram(),
            kind=SampleKind.RESERVOIR,
            population_size=total,
            bound_values=s1.bound_values,
            scheme=scheme,
            exceedance_p=min(s1.exceedance_p, s2.exceedance_p),
            model=s1.model,
        )

    n1, n2 = s1.population_size, s2.population_size
    take_first = draw_hypergeometric(n1, n2, k, rng, cache=cache,
                                     method=method)
    if OBS.enabled:
        reg = OBS.registry
        reg.histogram("merge.hr.draw_l").observe(take_first)
        # Steps the eq. (3) recursion walks to fill the pmf: the width
        # of the hypergeometric support for this (n1, n2, k).
        reg.histogram("merge.hr.recursion_depth").observe(
            min(k, n1) - max(0, k - n2))
    # Clamp to the realized sample sizes.  The hypergeometric support
    # already guarantees take_first <= min(k, n1), but with k <= |S_i| we
    # also need take_first <= |S1| and k - take_first <= |S2|, which holds
    # because take_first <= k <= |S1| and k - take_first <= k <= |S2|.
    sub1 = purge_reservoir(s1.histogram, take_first, rng)
    sub2 = purge_reservoir(s2.histogram, k - take_first, rng)
    return WarehouseSample(
        histogram=sub1.join(sub2),
        kind=SampleKind.RESERVOIR,
        population_size=total,
        bound_values=s1.bound_values,
        scheme=scheme,
        exceedance_p=min(s1.exceedance_p, s2.exceedance_p),
        model=s1.model,
    )


@traced("merge.sb_union", timer="merge.sb_union.seconds")
def sb_union(samples: Sequence[WarehouseSample], *,
             rng: SplittableRng) -> WarehouseSample:
    """Algorithm SB's merge: equalize rates, then union.

    If all samples share one Bernoulli rate the union is immediate; with
    differing rates each sample is first Bernoulli-purged down to the
    minimum rate (Section 4.1's unioning remark).  No footprint bound is
    enforced — that is the point of the SB baseline.
    """
    if not samples:
        raise ConfigurationError("sb_union needs at least one sample")
    if OBS.enabled:
        OBS.registry.counter("merge.sb_union").inc()
    for s in samples:
        if not s.kind.is_bernoulli or s.rate is None:
            raise IncompatibleSamplesError(
                "sb_union requires Bernoulli samples")
    q = min(s.rate for s in samples)  # type: ignore[type-var]
    merged = None
    total = 0
    for s in samples:
        assert s.rate is not None
        hist = s.histogram
        if s.rate > q:
            hist = purge_bernoulli(hist, q / s.rate, rng)
        merged = hist.copy() if merged is None else merged.join(hist)
        total += s.population_size
    assert merged is not None
    bound = max(max(s.bound_values for s in samples), max(1, merged.size))
    return WarehouseSample(
        histogram=merged,
        kind=SampleKind.BERNOULLI,
        population_size=total,
        bound_values=bound,
        rate=q,
        scheme="sb",
        model=samples[0].model,
    )


def merge_samples(s1: WarehouseSample, s2: WarehouseSample, *,
                  rng: SplittableRng,
                  hyper_cache: Optional[CachedHypergeometric] = None
                  ) -> WarehouseSample:
    """Scheme-aware pairwise merge (what the warehouse calls).

    * two SB samples -> :func:`sb_union`;
    * any sample produced by the HR family (and no Bernoulli input) ->
      :func:`hr_merge`;
    * everything else -> :func:`hb_merge` (which itself routes
      reservoir-involving cases through the hypergeometric merge).
    """
    if s1.scheme == "sb" and s2.scheme == "sb":
        return sb_union([s1, s2], rng=rng)
    hr_only = (s1.scheme == "hr" and s2.scheme == "hr"
               and not s1.kind.is_bernoulli and not s2.kind.is_bernoulli)
    if hr_only:
        return hr_merge(s1, s2, rng=rng, cache=hyper_cache)
    return hb_merge(s1, s2, rng=rng, hyper_cache=hyper_cache)


# One alias-table cache per process.  Thread workers share it (the cache
# locks its own mutations); each process-pool worker imports this module
# fresh and warms its own copy.  Eagerly constructed so executing
# _merge_node never writes module state.
_NODE_CACHE = CachedHypergeometric()

_MERGE_MODES = ("serial", "balanced", "parallel")


def _pack_sample(sample: WarehouseSample) -> tuple:
    """Slim pickle payload for one sample: histogram pairs + scalars.

    A merge node needs the compact histogram and the merge-relevant
    metadata — not the default dataclass pickle with its per-field
    names.  Values within one histogram are distinct by construction,
    so the pairs round-trip through ``from_unique_counts``.
    """
    hist = sample.histogram
    return (hist.value_list(), hist.count_list(), sample.kind.name,
            sample.population_size, sample.bound_values, sample.rate,
            sample.scheme, sample.exceedance_p)


def _unpack_sample(state: tuple, model) -> WarehouseSample:
    (values, counts, kind, population, bound, rate, scheme,
     exceedance_p) = state
    return WarehouseSample(
        histogram=CompactHistogram.from_unique_counts(values, counts),
        kind=SampleKind[kind], population_size=population,
        bound_values=bound, rate=rate, scheme=scheme,
        exceedance_p=exceedance_p, model=model)


@dataclass(frozen=True)
class _MergeNodeTask:
    """One node of the merge plan: two samples plus the node's seed.

    Module-level and frozen so a :class:`ProcessExecutor` can pickle it.
    ``backend`` records the kernel backend the plan was built under, so
    a worker process evaluates the node with the same kernels whatever
    its own environment resolved to.  Pickling goes through
    :func:`_pack_sample` — compact histogram pairs plus merge metadata,
    with the (shared) footprint model serialized once — instead of the
    full sample objects, which shrinks process-pool payloads (see
    ``parallel.task.pickle.seconds`` in ``repro obs``).
    """

    left: WarehouseSample
    right: WarehouseSample
    seed: int
    backend: str = ""

    def __getstate__(self) -> tuple:
        models = (self.left.model,) if self.left.model == self.right.model \
            else (self.left.model, self.right.model)
        return (_pack_sample(self.left), _pack_sample(self.right),
                self.seed, self.backend, models)

    def __setstate__(self, state: tuple) -> None:
        left, right, seed, backend, models = state
        object.__setattr__(self, "left", _unpack_sample(left, models[0]))
        object.__setattr__(self, "right", _unpack_sample(right, models[-1]))
        object.__setattr__(self, "seed", seed)
        object.__setattr__(self, "backend", backend)


def _merge_node(task: _MergeNodeTask) -> WarehouseSample:
    """Evaluate one merge node from its own RNG substream.

    The node's rng is rebuilt from the task seed, so the draw sequence
    depends only on ``(left, right, seed)`` and the kernel backend —
    never on which worker runs the node or in what order.  All nodes
    route through the per-process :data:`_NODE_CACHE`: alias tables are
    pure functions of ``(n1, n2, k)``, so cache hits and rebuilt misses
    consume the rng identically, keeping output independent of cache
    state.  The backend pinned at plan time is re-selected here only if
    the evaluating process resolved a different one (possible for a
    process pool spawned under another environment); in-process workers
    see a no-op, so thread pools never touch the global selection.
    """
    rng = SplittableRng(task.seed)
    if task.backend and task.backend != active_backend():
        with use_backend(task.backend):
            return merge_samples(task.left, task.right, rng=rng,
                                 hyper_cache=_NODE_CACHE)
    return merge_samples(task.left, task.right, rng=rng,
                         hyper_cache=_NODE_CACHE)


@traced("merge.tree", timer="merge.tree.seconds")
def merge_tree(samples: Sequence[WarehouseSample], *,
               rng: SplittableRng,
               mode: str = "serial",
               merger: Optional[MergeFn] = None,
               executor=None) -> WarehouseSample:
    """Fold many per-partition samples into one sample of their union.

    Every mode evaluates the same **balanced binary plan**: level by
    level, adjacent pairs merge, and each node draws from its own RNG
    substream ``rng.spawn("merge", level, index)``.  Because node seeds
    are positional — not threaded through a shared generator — the
    merged sample is a pure function of the inputs and the seed,
    byte-identical across modes, executors, and worker counts
    (the "tree-shape independence" invariant in docs/determinism.md).

    * ``mode="serial"`` and ``mode="balanced"`` evaluate the plan inline
      (they are aliases kept for API stability; both keep partition
      sizes symmetric so alias tables are reused across each level,
      Section 4.2).
    * ``mode="parallel"`` evaluates each level's nodes concurrently via
      ``executor`` (any ``repro.warehouse.parallel`` executor).  With
      ``executor=None`` it degrades to inline evaluation.

    On odd-sized levels the **last** sample is carried into the next
    level, where it joins the front pairing — so a carried sample waits
    exactly one level instead of riding the tail to the root (which
    would degenerate the tree on non-power-of-two partition counts).

    ``merger`` overrides the per-node evaluation with a caller-supplied
    pairwise merge (applied over the same balanced plan); it is
    incompatible with ``mode="parallel"`` because closures cannot be
    shipped to process pools and would reintroduce order-dependent rng
    consumption.
    """
    if not samples:
        raise ConfigurationError("merge_tree needs at least one sample")
    if mode not in _MERGE_MODES:
        raise ConfigurationError(f"unknown merge mode {mode!r}")
    if executor is not None and mode != "parallel":
        raise ConfigurationError(
            f"executor requires mode='parallel', got mode={mode!r}")
    if merger is not None and mode == "parallel":
        raise ConfigurationError(
            "a custom merger cannot run under mode='parallel'; "
            "use mode='serial' or mode='balanced'")

    level: List[WarehouseSample] = list(samples)
    level_index = 0
    while len(level) > 1:
        started = monotonic() if OBS.enabled else 0.0
        carry = level.pop() if len(level) % 2 else None
        if merger is not None:
            merged = [merger(level[i], level[i + 1])
                      for i in range(0, len(level), 2)]
        else:
            backend = active_backend()
            tasks = [
                _MergeNodeTask(
                    level[i], level[i + 1],
                    rng.spawn("merge", level_index, i // 2).seed_value,
                    backend)
                for i in range(0, len(level), 2)
            ]
            if mode == "parallel" and executor is not None:
                merged = executor.map(_merge_node, tasks)
            else:
                merged = [_merge_node(t) for t in tasks]
        level = ([carry] if carry is not None else []) + list(merged)
        if OBS.enabled:
            OBS.registry.histogram("merge.tree.level.seconds").observe(
                monotonic() - started)
        level_index += 1
    return level[0]

"""Algorithm SB — the "stratified Bernoulli" benchmark baseline (Section 5).

SB samples every partition at one fixed rate ``q`` and merges by plain
union.  It is uniform and extremely fast — there is no footprint tracking,
no compact representation, no size control — which is exactly why the
paper uses it as the speed yardstick: the gap between SB and HB/HR is the
price of bounded footprints and compact storage.

For storage symmetry with the other algorithms we *do* return the sample
as a :class:`~repro.core.sample.WarehouseSample` in compact histogram
form, built once at finalization (cost O(sample size), not per arrival).
The ``bound_values`` recorded on the sample is nominal (SB guarantees no
bound); it is carried so SB samples can flow through the same warehouse
plumbing.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, TypeVar

from repro.core.footprint import DEFAULT_MODEL, FootprintModel
from repro.core.histogram import CompactHistogram
from repro.core.phases import SampleKind
from repro.core.sample import WarehouseSample
from repro.errors import ConfigurationError, ProtocolError
from repro.obs.runtime import OBS
from repro.rng import SplittableRng
from repro.sampling.bernoulli import BernoulliSampler

__all__ = ["AlgorithmSB"]

T = TypeVar("T")


class AlgorithmSB:
    """Fixed-rate Bernoulli sampler (the paper's speed baseline).

    Parameters
    ----------
    rate:
        The Bernoulli sampling rate ``q`` shared by all partitions of the
        data set (merging by union requires equal rates).
    rng:
        Randomness source.
    nominal_bound:
        A ``bound_values`` to record on the produced sample for warehouse
        plumbing; purely informational (SB enforces no bound).  Defaults
        to the realized sample size at finalization.

    Examples
    --------
    >>> from repro.rng import SplittableRng
    >>> sb = AlgorithmSB(0.01, rng=SplittableRng(3))
    >>> sb.feed_many(range(100_000))
    >>> sample = sb.finalize()
    >>> sample.kind.name
    'BERNOULLI'
    """

    def __init__(self, rate: float, *,
                 rng: Optional[SplittableRng] = None,
                 nominal_bound: Optional[int] = None,
                 model: FootprintModel = DEFAULT_MODEL) -> None:
        if not 0.0 < rate <= 1.0:
            raise ConfigurationError(
                f"rate must be in (0, 1], got {rate}")
        if nominal_bound is not None and nominal_bound <= 0:
            raise ConfigurationError(
                f"nominal_bound must be positive, got {nominal_bound}")
        self._rng = rng if rng is not None else SplittableRng()
        self._inner = BernoulliSampler(rate, self._rng)
        self._nominal_bound = nominal_bound
        self._model = model
        self._finalized = False

    @property
    def rate(self) -> float:
        """The fixed Bernoulli rate ``q``."""
        return self._inner.rate

    @property
    def seen(self) -> int:
        """Number of elements observed so far."""
        return self._inner.seen

    @property
    def sample_size(self) -> int:
        """Current number of sampled elements."""
        return len(self._inner)

    def feed(self, value: T) -> None:
        """Observe one arriving data element."""
        self._check_open()
        self._inner.feed(value)

    def feed_many(self, values: Iterable[T]) -> None:
        """Observe a batch of values (geometric-skip fast path)."""
        self._check_open()
        self._inner.feed_many(values)

    def _check_open(self) -> None:
        if self._finalized:
            raise ProtocolError("sampler already finalized")

    def finalize(self) -> WarehouseSample:
        """Close the sampler and return the sample in warehouse form."""
        self._check_open()
        self._finalized = True
        values: List[object] = self._inner.finalize()
        histogram = CompactHistogram.from_values(values)
        if OBS.enabled:
            reg = OBS.registry
            reg.counter("sb.finalize").inc()
            reg.counter("sb.arrivals").add(self._inner.seen)
            reg.histogram("sb.sample_size").observe(histogram.size)
        bound = self._nominal_bound
        if bound is None:
            bound = max(1, histogram.size)
        return WarehouseSample(
            histogram=histogram,
            kind=SampleKind.BERNOULLI,
            population_size=self._inner.seen,
            bound_values=bound,
            rate=self._inner.rate,
            scheme="sb",
            model=self._model,
        )

"""Footprint accounting: bytes consumed by a sample's representation.

The paper states requirements in terms of a maximum footprint of ``F``
bytes, which "corresponds to a sample size of ``n_F`` data-element values".
That correspondence needs a concrete storage model:

* an expanded bag of ``n`` values costs ``n * value_bytes``;
* a compact histogram costs ``value_bytes`` per *singleton* value and
  ``value_bytes + count_bytes`` per ``(value, count)`` pair — matching the
  concise-sampling representation of [7] where singletons are stored as the
  bare value.

With that model, ``n_F = F // value_bytes``: a bag at the size bound and a
histogram of ``n_F`` singletons cost the same ``F`` bytes, and a histogram
with duplicates holds *more* than ``n_F`` data elements in the same space
(which is exactly why the hybrid algorithms prefer the compact form).

The defaults (8-byte values, 4-byte counts) mirror the paper's experiments
on integer data, where a 32 K-element partition with ``n_F = 8192``
corresponds to ``F = 64 KiB``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["FootprintModel", "DEFAULT_MODEL"]


@dataclass(frozen=True)
class FootprintModel:
    """Maps sample representations to storage bytes.

    Parameters
    ----------
    value_bytes:
        Cost of storing one data-element value (default 8: a 64-bit
        integer or a pointer/offset into a value dictionary).
    count_bytes:
        Additional cost of the count in a ``(value, count)`` pair
        (default 4: a 32-bit counter, as in concise sampling).

    Examples
    --------
    >>> m = FootprintModel()
    >>> m.bag_footprint(3)
    24
    >>> m.histogram_footprint(distinct=3, singletons=1)
    32
    >>> m.bound_values(65536)
    8192
    """

    value_bytes: int = 8
    count_bytes: int = 4

    def __post_init__(self) -> None:
        if self.value_bytes <= 0:
            raise ConfigurationError(
                f"value_bytes must be positive, got {self.value_bytes}")
        if self.count_bytes < 0:
            raise ConfigurationError(
                f"count_bytes must be >= 0, got {self.count_bytes}")
        if self.count_bytes > self.value_bytes:
            # If a count costs more than a value, the compact form would be
            # larger than the expanded bag and the footprint bound of a
            # bounded-size sample could no longer be guaranteed.
            raise ConfigurationError(
                f"count_bytes ({self.count_bytes}) must not exceed "
                f"value_bytes ({self.value_bytes})")

    def bag_footprint(self, size: int) -> int:
        """Bytes to store ``size`` values in expanded (bag) form."""
        return size * self.value_bytes

    def histogram_footprint(self, distinct: int, singletons: int) -> int:
        """Bytes to store a compact histogram.

        ``distinct`` values of which ``singletons`` have count 1 (stored as
        bare values) and the rest as ``(value, count)`` pairs.
        """
        pairs = distinct - singletons
        return (distinct * self.value_bytes) + (pairs * self.count_bytes)

    def bound_values(self, footprint_bytes: int) -> int:
        """``n_F``: the sample-size bound implied by an ``F``-byte budget."""
        bound = footprint_bytes // self.value_bytes
        if bound <= 0:
            raise ConfigurationError(
                f"footprint of {footprint_bytes} bytes cannot hold even one "
                f"{self.value_bytes}-byte value")
        return bound

    def footprint_for_values(self, bound_values: int) -> int:
        """``F``: the byte budget corresponding to a value-count bound."""
        if bound_values <= 0:
            raise ConfigurationError(
                f"bound_values must be positive, got {bound_values}")
        return bound_values * self.value_bytes


#: Shared default model (8-byte values, 4-byte counts).
DEFAULT_MODEL = FootprintModel()

"""Counting sampling (Gibbons & Matias, SIGMOD'98) — deletion-capable
extension of concise sampling; Section 3.3 notes it is non-uniform too.

A counting sample differs from a concise sample in one rule: once a value
is *in* the sample, every later occurrence of that value increments its
count **deterministically** (no coin flip).  The count of an in-sample
value is therefore exact over the suffix of the stream that follows its
admission, which is what makes deletions in the parent data tractable:
deleting an occurrence of an in-sample value just decrements its count
(evicting the value when the count reaches zero).

Purging to a lower admission rate flips one coin per *value* (the
admission event is what gets thinned; the deterministic tail rides
along): with probability ``q'/q`` the entry survives intact, otherwise
the whole entry is evicted.

Like :class:`~repro.core.concise.ConciseSampler` this is a baseline:
value-dependent admission breaks uniformity for the same reason, so
counting samples must not flow into the merge machinery.
"""

from __future__ import annotations

from typing import Iterable, Optional, TypeVar

from repro.core.concise import DEFAULT_RATE_DECAY
from repro.core.footprint import DEFAULT_MODEL, FootprintModel
from repro.core.histogram import CompactHistogram
from repro.errors import ConfigurationError, ProtocolError
from repro.rng import SplittableRng

__all__ = ["CountingSampler"]

T = TypeVar("T")


class CountingSampler:
    """Bounded-footprint counting sampler with deletion support.

    Parameters
    ----------
    footprint_bytes:
        The byte budget ``F``.
    rng:
        Randomness source.
    rate_decay:
        Admission-rate decay per purge round.
    model:
        Storage-cost model.

    Examples
    --------
    >>> from repro.rng import SplittableRng
    >>> cs = CountingSampler(footprint_bytes=960, rng=SplittableRng(4))
    >>> for v in [1, 2, 1, 1, 3]:
    ...     cs.feed(v)
    >>> cs.delete(1)
    True
    >>> cs.sample_size <= 5
    True
    """

    def __init__(self, footprint_bytes: int, *,
                 rng: Optional[SplittableRng] = None,
                 rate_decay: float = DEFAULT_RATE_DECAY,
                 model: FootprintModel = DEFAULT_MODEL) -> None:
        if footprint_bytes < model.value_bytes:
            raise ConfigurationError(
                f"footprint of {footprint_bytes} bytes cannot hold a single "
                f"{model.value_bytes}-byte value")
        if not 0.0 < rate_decay < 1.0:
            raise ConfigurationError(
                f"rate_decay must be in (0, 1), got {rate_decay}")
        self._bound_bytes = footprint_bytes
        self._rng = rng if rng is not None else SplittableRng()
        self._decay = rate_decay
        self._model = model
        self._histogram = CompactHistogram()
        self._rate = 1.0
        self._seen = 0
        self._deleted = 0
        self._finalized = False

    @property
    def rate(self) -> float:
        """Current admission rate ``q``."""
        return self._rate

    @property
    def seen(self) -> int:
        """Insertions observed (deletions tracked separately)."""
        return self._seen

    @property
    def deletions(self) -> int:
        """Deletions observed."""
        return self._deleted

    @property
    def sample_size(self) -> int:
        """Number of data elements currently in the sample."""
        return self._histogram.size

    @property
    def footprint_bytes(self) -> int:
        """Current compact footprint."""
        return self._histogram.footprint(self._model)

    @property
    def histogram(self) -> CompactHistogram:
        """The current sample (live view; do not mutate)."""
        return self._histogram

    def _check_open(self) -> None:
        if self._finalized:
            raise ProtocolError("sampler already finalized")

    def feed(self, value: T) -> None:
        """Observe an inserted data element.

        In-sample values increment deterministically; new values are
        admitted with probability ``rate``.
        """
        self._check_open()
        self._seen += 1
        if value in self._histogram:
            self._histogram.insert(value)  # deterministic count bump
        elif self._rng.bernoulli(self._rate):
            self._histogram.insert(value)
        else:
            return
        while self._histogram.footprint(self._model) > self._bound_bytes:
            self._purge()

    def feed_many(self, values: Iterable[T]) -> None:
        """Observe a batch of inserted values."""
        for v in values:
            self.feed(v)

    def delete(self, value: T) -> bool:
        """Observe a deletion in the parent data.

        If the value is in the sample its count is decremented (the entry
        is evicted at zero) and ``True`` is returned; deletions of
        un-sampled values are no-ops returning ``False``.
        """
        self._check_open()
        self._deleted += 1
        if value not in self._histogram:
            return False
        self._histogram.remove(value)
        return True

    def _purge(self) -> None:
        """One purge round: per-*value* survival coin at ``q'/q``."""
        keep = self._decay
        self._rate *= self._decay
        survivors = CompactHistogram()
        for value, count in self._histogram.pairs():
            if self._rng.bernoulli(keep):
                survivors.insert_count(value, count)
        self._histogram = survivors

    def finalize(self) -> CompactHistogram:
        """Close the sampler and return the compact sample."""
        self._check_open()
        self._finalized = True
        return self._histogram

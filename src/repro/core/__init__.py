"""The paper's primary contribution: bounded-footprint, compact, *uniform*
samplers (Algorithms HB and HR), the SB baseline, the concise/counting
baselines they are contrasted with, and the merge procedures HBMerge and
HRMerge."""

from repro.core.concise import ConciseSampler
from repro.core.counting import CountingSampler
from repro.core.footprint import FootprintModel
from repro.core.histogram import CompactHistogram
from repro.core.hybrid_bernoulli import AlgorithmHB
from repro.core.hybrid_reservoir import AlgorithmHR
from repro.core.merge import hb_merge, hr_merge, merge_samples, merge_tree
from repro.core.multi_purge import MultiPurgeBernoulli
from repro.core.phases import SampleKind
from repro.core.sample import WarehouseSample
from repro.core.stratified import StratifiedSample
from repro.core.stratified_bernoulli import AlgorithmSB

__all__ = [
    "StratifiedSample",
    "AlgorithmHB",
    "AlgorithmHR",
    "AlgorithmSB",
    "MultiPurgeBernoulli",
    "ConciseSampler",
    "CountingSampler",
    "CompactHistogram",
    "FootprintModel",
    "SampleKind",
    "WarehouseSample",
    "hb_merge",
    "hr_merge",
    "merge_samples",
    "merge_tree",
]

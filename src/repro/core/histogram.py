"""Compact ``(value, count)`` histogram — the samples' storage format.

All of the paper's samplers keep their sample, whenever possible, as a set
of ``(value, count)`` pairs with singletons stored as bare values (the
concise representation of [7]).  :class:`CompactHistogram` implements that
representation with O(1) insert/remove and *incremental* footprint
tracking, so the samplers can test ``footprint(S) >= F`` after every
arrival without rescanning the histogram.

The ``expand``/``compact`` round trip (Figure 2's ``expand(S)`` and the
finalization step) and the ``join`` of two histograms (used by HBMerge and
HRMerge) live here too.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, Iterable, Iterator, List, Sequence, Tuple

from repro.core.footprint import FootprintModel
from repro.errors import ConfigurationError

__all__ = ["CompactHistogram"]

Value = Hashable


class CompactHistogram:
    """A bag of values stored as value -> count with footprint tracking.

    Examples
    --------
    >>> h = CompactHistogram.from_values(["a", "a", "b"])
    >>> h.size, h.distinct, h.singletons
    (3, 2, 1)
    >>> sorted(h.expand())
    ['a', 'a', 'b']
    """

    __slots__ = ("_counts", "_size", "_singletons")

    def __init__(self) -> None:
        self._counts: Dict[Value, int] = {}
        self._size = 0        # total number of data elements
        self._singletons = 0  # number of values with count == 1

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, values: Iterable[Value]) -> "CompactHistogram":
        """Build a histogram by inserting every value in ``values``."""
        hist = cls()
        for v in values:
            hist.insert(v)
        return hist

    @classmethod
    def from_pairs(cls,
                   pairs: Iterable[Tuple[Value, int]]) -> "CompactHistogram":
        """Build a histogram from ``(value, count)`` pairs.

        Counts must be positive; repeated values accumulate.
        """
        hist = cls()
        for v, n in pairs:
            hist.insert_count(v, n)
        return hist

    @classmethod
    def from_unique_counts(cls, values: Sequence[Value],
                           counts: Sequence[int]) -> "CompactHistogram":
        """Build from parallel ``values``/``counts`` sequences, fast.

        The kernel-assembly constructor: values must be distinct and
        counts positive (both are checked cheaply), which lets the
        histogram skip the per-value ``insert_count`` bookkeeping and
        build its backing dict in one C-speed pass.  Insertion order
        follows ``values``, matching what repeated ``insert_count``
        calls would produce.
        """
        values = list(values)
        counts = list(counts)
        if len(values) != len(counts):
            raise ConfigurationError(
                f"values and counts must pair up: {len(values)} values "
                f"vs {len(counts)} counts")
        if counts and min(counts) <= 0:
            raise ConfigurationError("counts must be positive")
        mapping = dict(zip(values, counts))
        if len(mapping) != len(values):
            raise ConfigurationError(
                "from_unique_counts requires distinct values; use "
                "from_pairs to accumulate duplicates")
        hist = cls()
        hist._counts = mapping
        hist._size = sum(counts)
        hist._singletons = counts.count(1)
        return hist

    def copy(self) -> "CompactHistogram":
        """An independent copy."""
        clone = CompactHistogram()
        clone._counts = dict(self._counts)
        clone._size = self._size
        clone._singletons = self._singletons
        return clone

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total number of data elements (sum of counts)."""
        return self._size

    @property
    def distinct(self) -> int:
        """Number of distinct values."""
        return len(self._counts)

    @property
    def singletons(self) -> int:
        """Number of values whose count is exactly 1."""
        return self._singletons

    def count(self, value: Value) -> int:
        """The count of ``value`` (0 if absent)."""
        return self._counts.get(value, 0)

    def footprint(self, model: FootprintModel) -> int:
        """Storage bytes under ``model`` (O(1) — tracked incrementally)."""
        return model.histogram_footprint(len(self._counts), self._singletons)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, value: Value) -> None:
        """Insert one occurrence of ``value`` (the paper's insertValue)."""
        old = self._counts.get(value, 0)
        self._counts[value] = old + 1
        self._size += 1
        if old == 0:
            self._singletons += 1
        elif old == 1:
            self._singletons -= 1

    def insert_count(self, value: Value, count: int) -> None:
        """Insert ``count`` occurrences of ``value`` at once."""
        if count <= 0:
            raise ConfigurationError(f"count must be positive, got {count}")
        old = self._counts.get(value, 0)
        new = old + count
        self._counts[value] = new
        self._size += count
        if old == 1:
            self._singletons -= 1
        if old == 0 and new == 1:
            self._singletons += 1

    def remove(self, value: Value, count: int = 1) -> None:
        """Remove ``count`` occurrences of ``value``.

        Removing more occurrences than present raises
        :class:`~repro.errors.ConfigurationError`.
        """
        if count <= 0:
            raise ConfigurationError(f"count must be positive, got {count}")
        old = self._counts.get(value, 0)
        if count > old:
            raise ConfigurationError(
                f"cannot remove {count} of {value!r}; only {old} present")
        new = old - count
        self._size -= count
        if new == 0:
            del self._counts[value]
            if old == 1:
                self._singletons -= 1
        else:
            self._counts[value] = new
            if new == 1:
                self._singletons += 1
            elif old == 1:
                self._singletons -= 1  # unreachable (old==1 implies new==0)

    def set_count(self, value: Value, count: int) -> None:
        """Set the count of ``value`` outright (0 removes it)."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        old = self._counts.get(value, 0)
        if old == count:
            return
        if old == 1:
            self._singletons -= 1
        if count == 0:
            if old:
                del self._counts[value]
        else:
            self._counts[value] = count
            if count == 1:
                self._singletons += 1
        self._size += count - old

    # ------------------------------------------------------------------
    # Views and conversions
    # ------------------------------------------------------------------
    def pairs(self) -> Iterator[Tuple[Value, int]]:
        """Iterate ``(value, count)`` pairs in insertion order."""
        return iter(self._counts.items())

    def sorted_pairs(self) -> List[Tuple[Value, int]]:
        """``(value, count)`` pairs sorted by value (for stable output)."""
        return sorted(self._counts.items(), key=lambda item: repr(item[0]))

    def values(self) -> Iterator[Value]:
        """Iterate the distinct values."""
        return iter(self._counts)

    def value_list(self) -> List[Value]:
        """The distinct values as a list, in insertion order (C-speed)."""
        return list(self._counts)

    def count_list(self) -> List[int]:
        """The counts as a list, aligned with :meth:`value_list`.

        The kernel functions (:mod:`repro.kernels`) take run lengths in
        this form so a whole purge is one vectorized draw.
        """
        return list(self._counts.values())

    def expand(self) -> List[Value]:
        """The bag of values (each value repeated by its count)."""
        out: List[Value] = []
        for v, n in self._counts.items():
            out.extend([v] * n)
        return out

    def join(self, other: "CompactHistogram") -> "CompactHistogram":
        """Histogram of the multiset union (the merge algorithms' join).

        Computes the compact representation of
        ``expand(self) ++ expand(other)`` without expanding either operand.
        """
        bigger, smaller = (self, other) if self.distinct >= other.distinct \
            else (other, self)
        merged = Counter(bigger._counts)
        merged.update(smaller._counts)  # C-speed count summation
        result = CompactHistogram()
        result._counts = dict(merged)
        result._size = bigger._size + smaller._size
        # Only values present in both operands can change singleton
        # status (their joined count is >= 2), so adjust over the
        # overlap instead of rescanning the whole result.
        singletons = bigger._singletons + smaller._singletons
        for v in bigger._counts.keys() & smaller._counts.keys():
            if bigger._counts[v] == 1:
                singletons -= 1
            if smaller._counts[v] == 1:
                singletons -= 1
        result._singletons = singletons
        return result

    def joined_footprint(self, other: "CompactHistogram",
                         model: FootprintModel) -> int:
        """Footprint ``join(self, other)`` would have, without building it.

        HBMerge (Figure 6, line 12) needs this test before deciding whether
        the joined Bernoulli sample fits in ``F`` bytes.
        """
        distinct = len(self._counts)
        singletons = self._singletons
        for v, n in other.pairs():
            mine = self._counts.get(v, 0)
            if mine == 0:
                distinct += 1
                if n == 1:
                    singletons += 1
            else:
                if mine == 1:
                    singletons -= 1
        return model.histogram_footprint(distinct, singletons)

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __getstate__(self):
        # Compact pickle state (a bare tuple instead of the slot
        # mapping); merge-node payloads shipped to process pools ride
        # on this.
        return (self._counts, self._size, self._singletons)

    def __setstate__(self, state) -> None:
        self._counts, self._size, self._singletons = state

    def __len__(self) -> int:
        """Number of data elements, matching the paper's |S|."""
        return self._size

    def __contains__(self, value: Value) -> bool:
        return value in self._counts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompactHistogram):
            return NotImplemented
        return self._counts == other._counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = dict(list(self._counts.items())[:4])
        suffix = "..." if self.distinct > 4 else ""
        return (f"CompactHistogram(size={self._size}, "
                f"distinct={self.distinct}, {preview}{suffix})")

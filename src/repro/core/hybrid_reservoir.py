"""Algorithm HR — hybrid reservoir sampling (Figure 7).

Two phases:

1. **Exhaustive** — arrivals are inserted into a compact histogram until
   its footprint reaches the budget ``F``.
2. **Reservoir** — the sampler switches to reservoir mode with capacity
   ``n_F``.  The transition subsample (Figure 4's ``purgeReservoir``) is
   taken *lazily* at the first reservoir insertion; until then the compact
   histogram stands in for the (not yet materialized) reservoir, which is
   statistically equivalent because the purge outcome is independent of
   which arrival triggers it.

Compared with Algorithm HB, HR needs **no a-priori knowledge of the
partition size** and always delivers a full-size (``min(N, n_F)``-element)
sample — at the price of more expensive merges (the hypergeometric draw in
:func:`repro.core.merge.hr_merge`).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, TypeVar

from repro.core.footprint import DEFAULT_MODEL, FootprintModel
from repro.core.histogram import CompactHistogram
from repro.core.phases import SampleKind
from repro.core.purge import purge_reservoir
from repro.core.runs import RepeatedValue
from repro.core.sample import WarehouseSample
from repro.errors import ConfigurationError, ProtocolError
from repro.obs.runtime import OBS
from repro.obs.tracing import span
from repro.rng import SplittableRng
from repro.sampling.skip import SkipGenerator

__all__ = ["AlgorithmHR"]

T = TypeVar("T")


class AlgorithmHR:
    """Streaming hybrid reservoir sampler with an a-priori footprint bound.

    Parameters
    ----------
    bound_values:
        The sample-size bound ``n_F``; alternatively give
        ``footprint_bytes``.
    footprint_bytes:
        The byte budget ``F``; exactly one of this and ``bound_values``
        must be provided.
    rng:
        Randomness source; defaults to a fresh :class:`SplittableRng`.
    model:
        Storage-cost model for footprint accounting.

    Examples
    --------
    >>> from repro.rng import SplittableRng
    >>> hr = AlgorithmHR(bound_values=64, rng=SplittableRng(2))
    >>> hr.feed_many(range(10_000))
    >>> s = hr.finalize()
    >>> (s.kind.name, s.size)
    ('RESERVOIR', 64)
    """

    def __init__(self, bound_values: Optional[int] = None, *,
                 footprint_bytes: Optional[int] = None,
                 rng: Optional[SplittableRng] = None,
                 model: FootprintModel = DEFAULT_MODEL) -> None:
        if (bound_values is None) == (footprint_bytes is None):
            raise ConfigurationError(
                "provide exactly one of bound_values and footprint_bytes")
        if bound_values is None:
            assert footprint_bytes is not None
            bound_values = model.bound_values(footprint_bytes)
        if bound_values <= 0:
            raise ConfigurationError(
                f"bound_values must be positive, got {bound_values}")

        self._bound = bound_values
        self._bound_bytes = model.footprint_for_values(bound_values)
        self._rng = rng if rng is not None else SplittableRng()
        self._model = model

        self._phase = SampleKind.EXHAUSTIVE
        self._histogram: Optional[CompactHistogram] = CompactHistogram()
        self._pending: Optional[CompactHistogram] = None
        self._bag: Optional[List[object]] = None
        self._seen = 0
        self._capacity = bound_values
        self._skips: Optional[SkipGenerator] = None
        self._next_insert = 0
        self._finalized = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def phase(self) -> SampleKind:
        """Current phase: EXHAUSTIVE or RESERVOIR."""
        return self._phase

    @property
    def seen(self) -> int:
        """Number of elements observed so far."""
        return self._seen

    @property
    def bound_values(self) -> int:
        """The sample-size bound ``n_F``."""
        return self._bound

    @property
    def sample_size(self) -> int:
        """Current number of data elements in the sample.

        During the lazy-purge window (phase 2 before the first insertion)
        this reports the reservoir capacity the purge will shrink to.
        """
        if self._bag is not None:
            return len(self._bag)
        if self._pending is not None:
            return min(self._pending.size, self._capacity)
        assert self._histogram is not None
        return self._histogram.size

    # ------------------------------------------------------------------
    # Resume (used by HRMerge's exhaustive case)
    # ------------------------------------------------------------------
    @classmethod
    def resume(cls, sample: WarehouseSample, *,
               rng: SplittableRng) -> "AlgorithmHR":
        """Continue Algorithm HR from a finished sample.

        HRMerge's exhaustive case (Figure 8, lines 1-4) initializes the
        running sample to one input and streams the other input's values
        through the algorithm.
        """
        if sample.kind is SampleKind.BERNOULLI:
            raise ConfigurationError(
                "Algorithm HR cannot resume from a Bernoulli sample; "
                "use hb_merge for mixed-scheme merges")
        sampler = cls(sample.bound_values, rng=rng, model=sample.model)
        sampler._seen = sample.population_size
        sampler._phase = sample.kind
        if sample.kind is SampleKind.EXHAUSTIVE:
            sampler._histogram = sample.histogram.copy()
            # The resumed histogram may already sit at the footprint
            # boundary; re-check so the first arrival does not overshoot.
            if sampler._histogram.footprint(sampler._model) \
                    >= sampler._bound_bytes:
                sampler._enter_phase2()
        else:  # RESERVOIR
            sampler._histogram = None
            sampler._pending = sample.histogram.copy()
            sampler._capacity = sample.size
            sampler._phase = SampleKind.RESERVOIR
            sampler._skips = SkipGenerator(sampler._capacity, rng)
            sampler._next_insert = (sampler._seen
                                    + sampler._skips.next_skip(sampler._seen))
        return sampler

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._finalized:
            raise ProtocolError("sampler already finalized")

    def _enter_phase2(self) -> None:
        """Figure 7, lines 3-5: switch to reservoir mode.

        The purge down to ``n_F`` elements happens lazily at the first
        insertion (or at finalization if none occurs).
        """
        with span("hr.phase2", seen=self._seen):
            self._phase = SampleKind.RESERVOIR
            self._pending = self._histogram
            self._histogram = None
            self._capacity = self._bound
            self._skips = SkipGenerator(self._capacity, self._rng)
            self._next_insert = self._seen + self._skips.next_skip(self._seen)
        if OBS.enabled:
            OBS.registry.counter("hr.phase2.enter").inc()

    def _materialize_reservoir(self) -> None:
        """Lazy purgeReservoir + expand (Figure 7, lines 9-11)."""
        assert self._pending is not None
        with span("hr.purge", size=self._pending.size,
                  capacity=self._capacity):
            purged = purge_reservoir(self._pending, self._capacity,
                                     self._rng)
            self._bag = purged.expand()
            self._pending = None

    def feed(self, value: T) -> None:
        """Observe one arriving data element (Figure 7's per-arrival body)."""
        self._check_open()
        self._seen += 1
        if self._phase is SampleKind.EXHAUSTIVE:
            assert self._histogram is not None
            self._histogram.insert(value)
            if self._histogram.footprint(self._model) >= self._bound_bytes:
                self._enter_phase2()
            return
        if self._seen == self._next_insert:
            if self._bag is None:
                self._materialize_reservoir()
            if len(self._bag) < self._capacity:
                self._bag.append(value)
            else:
                victim = self._rng.randrange(self._capacity)
                self._bag[victim] = value
            assert self._skips is not None
            self._next_insert = (self._seen
                                 + self._skips.next_skip(self._seen))

    def feed_many(self, values: Iterable[T]) -> None:
        """Observe a batch of values (skip-based fast path for sequences)."""
        self._check_open()
        if isinstance(values, (list, tuple, range)):
            self._feed_sequence(values)
        else:
            for v in values:
                self.feed(v)

    def feed_run(self, value: T, count: int) -> None:
        """Observe ``count`` consecutive occurrences of one value.

        Used by the merge procedures to stream a compact sample through a
        running sampler without expanding it.
        """
        self._check_open()
        while count > 0 and self._phase is SampleKind.EXHAUSTIVE:
            self.feed(value)
            count -= 1
            if (self._phase is SampleKind.EXHAUSTIVE and count > 0
                    and self._histogram is not None
                    and self._histogram.count(value) >= 2):
                self._histogram.insert_count(value, count)
                self._seen += count
                count = 0
        if count > 0:
            self._feed_sequence(RepeatedValue(value, count))

    def _feed_sequence(self, values: Sequence[T]) -> None:
        offset = 0
        n = len(values)
        if self._phase is SampleKind.EXHAUSTIVE:
            hist = self._histogram
            assert hist is not None
            for pos in range(n):
                hist.insert(values[pos])
                self._seen += 1
                if hist.footprint(self._model) >= self._bound_bytes:
                    self._enter_phase2()
                    offset = pos + 1
                    break
            else:
                return
        base = self._seen - offset
        assert self._skips is not None
        while self._next_insert - base <= n:
            if self._bag is None:
                self._materialize_reservoir()
            value = values[self._next_insert - base - 1]
            if len(self._bag) < self._capacity:
                self._bag.append(value)
            else:
                victim = self._rng.randrange(self._capacity)
                self._bag[victim] = value
            self._seen = self._next_insert
            self._next_insert = (self._seen
                                 + self._skips.next_skip(self._seen))
        self._seen = base + n

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finalize(self) -> WarehouseSample:
        """Close the sampler and return the finished sample.

        If the sampler is in phase 2 with the purge still pending (no
        insertion happened after the switch), the purge is applied now;
        the result is statistically identical to having purged eagerly at
        the switch and evicted nothing since.
        """
        self._check_open()
        self._finalized = True
        if self._phase is SampleKind.EXHAUSTIVE:
            assert self._histogram is not None
            histogram = self._histogram
        elif self._bag is not None:
            histogram = CompactHistogram.from_values(self._bag)
        else:
            assert self._pending is not None
            histogram = purge_reservoir(self._pending, self._capacity,
                                        self._rng)
        if OBS.enabled:
            reg = OBS.registry
            reg.counter("hr.finalize").inc()
            reg.counter("hr.arrivals").add(self._seen)
            reg.histogram("hr.sample_size").observe(histogram.size)
        return WarehouseSample(
            histogram=histogram,
            kind=self._phase,
            population_size=self._seen,
            bound_values=self._bound,
            rate=None,
            scheme="hr",
            exceedance_p=0.001,  # unused by HR; kept for merge symmetry
            model=self._model,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AlgorithmHR(nF={self._bound}, phase={self._phase.name}, "
                f"seen={self._seen}, size={self.sample_size})")

"""Stratified samples — the design Section 4.1 notes comes for free.

"The samples produced by Algorithm HB can also be simply concatenated,
yielding a stratified random sample of the concatenation of the parent
data-set partitions.  A similar observation applies to Algorithm HR."

A :class:`StratifiedSample` therefore keeps the per-partition samples
*separate* (each stratum = one partition with its own uniform sample and
known parent size) instead of merging them.  Compared with the merged
uniform sample this preserves more information: stratified estimators
weight each stratum by its exact parent size, which removes all
between-strata variance — often a large win when partition means differ
(e.g. temporal drift across daily partitions).

Estimators here implement the classical stratified expansion:
``total = Σ_h  N_h · mean_h`` with variance ``Σ_h N_h² · var_h / n_h``
(finite-population corrected per stratum).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist
from typing import Callable, List, Sequence

from repro.analytics.estimators import Estimate
from repro.core.phases import SampleKind
from repro.core.sample import WarehouseSample
from repro.errors import ConfigurationError

__all__ = ["StratifiedSample"]

_NORMAL = NormalDist()


@dataclass(frozen=True)
class _StratumStats:
    size: int           # n_h: sample size
    population: int     # N_h: stratum (partition) size
    mean: float
    variance: float     # sample variance (n-1 denominator)
    hits: float         # predicate hits (for counts)


def _stratum_stats(sample: WarehouseSample,
                   value_fn: Callable[[object], float]) -> _StratumStats:
    n = sample.size
    if n == 0:
        return _StratumStats(0, sample.population_size, 0.0, 0.0, 0.0)
    total = 0.0
    total_sq = 0.0
    for value, count in sample.histogram.pairs():
        x = value_fn(value)
        total += x * count
        total_sq += x * x * count
    mean = total / n
    variance = 0.0
    if n > 1:
        variance = max(0.0, (total_sq / n - mean * mean)) * n / (n - 1)
    return _StratumStats(n, sample.population_size, mean, variance, 0.0)


class StratifiedSample:
    """Per-partition samples kept separate, with stratified estimators.

    Parameters
    ----------
    strata:
        Per-partition :class:`WarehouseSample` objects (disjoint parents).

    Examples
    --------
    >>> from repro import AlgorithmHR, SplittableRng
    >>> rng = SplittableRng(0)
    >>> strata = []
    >>> for lo in (0, 1000):
    ...     hr = AlgorithmHR(bound_values=64, rng=rng.spawn(lo))
    ...     hr.feed_many(list(range(lo, lo + 1000)))
    ...     strata.append(hr.finalize())
    >>> s = StratifiedSample(strata)
    >>> s.population_size
    2000
    """

    def __init__(self, strata: Sequence[WarehouseSample]) -> None:
        if not strata:
            raise ConfigurationError(
                "a stratified sample needs at least one stratum")
        self._strata = list(strata)

    @property
    def strata(self) -> List[WarehouseSample]:
        """The per-partition samples."""
        return list(self._strata)

    @property
    def num_strata(self) -> int:
        """Number of strata."""
        return len(self._strata)

    @property
    def population_size(self) -> int:
        """Total parent elements across strata."""
        return sum(s.population_size for s in self._strata)

    @property
    def size(self) -> int:
        """Total sampled elements across strata."""
        return sum(s.size for s in self._strata)

    def values(self) -> List[object]:
        """The concatenated bag of sampled values (Section 4.1's
        'simply concatenated' stratified sample)."""
        out: List[object] = []
        for s in self._strata:
            out.extend(s.values())
        return out

    # ------------------------------------------------------------------
    # Stratified estimators
    # ------------------------------------------------------------------
    def _interval(self, value: float, variance: float,
                  confidence: float) -> Estimate:
        if not 0.0 < confidence < 1.0:
            raise ConfigurationError(
                f"confidence must be in (0, 1), got {confidence}")
        if variance <= 0.0:
            return Estimate(value, value, value, confidence, exact=True)
        half = _NORMAL.inv_cdf(0.5 + confidence / 2.0) * math.sqrt(variance)
        return Estimate(value, value - half, value + half, confidence)

    def estimate_sum(self, *,
                     value_fn: Callable[[object], float] = float,
                     confidence: float = 0.95) -> Estimate:
        """Stratified total: ``Σ_h N_h · mean_h`` with per-stratum fpc."""
        total = 0.0
        variance = 0.0
        exact = True
        for s in self._strata:
            st = _stratum_stats(s, value_fn)
            if st.size == 0:
                if st.population > 0:
                    raise ConfigurationError(
                        "cannot estimate from an empty stratum sample "
                        "with a non-empty parent")
                continue
            total += st.population * st.mean
            if s.kind is not SampleKind.EXHAUSTIVE:
                exact = False
                fpc = max(0.0, 1.0 - st.size / max(1, st.population))
                variance += (st.population ** 2) * st.variance \
                    / st.size * fpc
        if exact:
            return Estimate(total, total, total, confidence, exact=True)
        return self._interval(total, variance, confidence)

    def estimate_avg(self, *,
                     value_fn: Callable[[object], float] = float,
                     confidence: float = 0.95) -> Estimate:
        """Stratified mean: the stratified total over the known N."""
        n = self.population_size
        if n == 0:
            raise ConfigurationError("empty population")
        total = self.estimate_sum(value_fn=value_fn, confidence=confidence)
        return Estimate(total.value / n, total.ci_low / n,
                        total.ci_high / n, confidence, exact=total.exact)

    def estimate_count(self, *,
                       where: Callable[[object], bool],
                       confidence: float = 0.95) -> Estimate:
        """Stratified count of elements satisfying ``where``."""
        indicator = lambda v: 1.0 if where(v) else 0.0  # noqa: E731
        return self.estimate_sum(value_fn=indicator, confidence=confidence)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"StratifiedSample(strata={self.num_strata}, "
                f"size={self.size}, population={self.population_size})")

"""Sampler phases / final sample kinds.

Algorithm HB moves through up to three phases (Figure 2) and Algorithm HR
through two (Figure 7).  The *final* phase determines what the produced
sample statistically is, which in turn drives the merge logic of Figures 6
and 8 — so the same enumeration serves as both the live phase of a running
sampler and the kind tag on a finished :class:`~repro.core.sample.WarehouseSample`.
"""

from __future__ import annotations

import enum

__all__ = ["SampleKind"]


class SampleKind(enum.IntEnum):
    """What a finished sample *is*, statistically.

    The integer values match the paper's phase numbers for Algorithm HB.
    """

    #: Phase 1 outcome: the sample is an exact frequency histogram of the
    #: entire parent partition (every value, with its true count).
    EXHAUSTIVE = 1

    #: Phase 2 outcome: a Bernoulli(q) sample (conditioned on not exceeding
    #: the bound; treatable as Bernoulli in practice since the exceedance
    #: probability p is tiny).
    BERNOULLI = 2

    #: Phase 3 outcome: a simple random sample without replacement of a
    #: fixed size (a reservoir sample).
    RESERVOIR = 3

    @property
    def is_exhaustive(self) -> bool:
        """True for :attr:`EXHAUSTIVE`."""
        return self is SampleKind.EXHAUSTIVE

    @property
    def is_bernoulli(self) -> bool:
        """True for :attr:`BERNOULLI`."""
        return self is SampleKind.BERNOULLI

    @property
    def is_reservoir(self) -> bool:
        """True for :attr:`RESERVOIR`."""
        return self is SampleKind.RESERVOIR

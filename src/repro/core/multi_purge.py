"""The multiple-purge Bernoulli variant (Section 4.1) — an ablation.

Section 4.1 sketches a variant of Algorithm HB that *eliminates phase 3*:
whenever the phase-2 sample hits the bound ``n_F``, the sampler purges
again with an ever smaller rate ``q`` instead of switching to reservoir
mode.  The paper argues (without experiments) that this variant is
dominated by Algorithm HB: it is "somewhat more expensive on average, and
the final sample sizes would tend to be smaller and less stable".

We implement it so the claim can be tested — see
``benchmarks/bench_ablation_multipurge.py``, which measures exactly the
cost and sample-size stability comparison the paper asserts.

The produced sample is labelled ``scheme="hb-mp"``; like HB's phase-2
output it is a (conditional) Bernoulli sample and merges through
:func:`repro.core.merge.hb_merge`.
"""

from __future__ import annotations

from typing import Iterable, Optional, TypeVar

from repro.core.footprint import DEFAULT_MODEL, FootprintModel
from repro.core.histogram import CompactHistogram
from repro.core.phases import SampleKind
from repro.core.purge import purge_bernoulli
from repro.core.sample import WarehouseSample
from repro.errors import ConfigurationError, ProtocolError
from repro.rng import SplittableRng
from repro.sampling.exceedance import rate_for_bound

__all__ = ["MultiPurgeBernoulli"]

T = TypeVar("T")


class MultiPurgeBernoulli:
    """Phase-3-free Algorithm HB: repeated Bernoulli purging (Section 4.1).

    Parameters
    ----------
    population_size:
        The partition size ``N`` (needed, as in HB, to pick the initial
        phase-2 rate).
    bound_values:
        The sample-size bound ``n_F``; alternatively ``footprint_bytes``.
    exceedance_p:
        Exceedance target for the initial rate.
    purge_decay:
        Extra multiplicative rate reduction applied at each repeat purge
        (``q <- q * purge_decay``); must be in ``(0, 1)``.

    Examples
    --------
    >>> from repro.rng import SplittableRng
    >>> mp = MultiPurgeBernoulli(100_000, bound_values=256,
    ...                          rng=SplittableRng(11))
    >>> mp.feed_many(range(100_000))
    >>> s = mp.finalize()
    >>> s.size <= 256
    True
    """

    def __init__(self, population_size: int,
                 bound_values: Optional[int] = None, *,
                 footprint_bytes: Optional[int] = None,
                 exceedance_p: float = 0.001,
                 purge_decay: float = 0.8,
                 rng: Optional[SplittableRng] = None,
                 model: FootprintModel = DEFAULT_MODEL,
                 rate_method: str = "auto") -> None:
        if population_size <= 0:
            raise ConfigurationError(
                f"population_size must be positive, got {population_size}")
        if (bound_values is None) == (footprint_bytes is None):
            raise ConfigurationError(
                "provide exactly one of bound_values and footprint_bytes")
        if bound_values is None:
            assert footprint_bytes is not None
            bound_values = model.bound_values(footprint_bytes)
        if not 0.0 < purge_decay < 1.0:
            raise ConfigurationError(
                f"purge_decay must be in (0, 1), got {purge_decay}")
        self._population = population_size
        self._bound = bound_values
        self._bound_bytes = model.footprint_for_values(bound_values)
        self._p = exceedance_p
        self._decay = purge_decay
        self._rng = rng if rng is not None else SplittableRng()
        self._model = model
        self._rate_method = rate_method

        self._exhaustive = True
        self._histogram = CompactHistogram()
        self._rate = 1.0
        self._seen = 0
        self._until_next = 0
        self._purges = 0
        self._finalized = False

    @property
    def rate(self) -> float:
        """Current admission rate (1.0 while exhaustive)."""
        return self._rate

    @property
    def purge_count(self) -> int:
        """Number of purges executed (diagnostic for the ablation)."""
        return self._purges

    @property
    def seen(self) -> int:
        """Number of elements observed."""
        return self._seen

    @property
    def sample_size(self) -> int:
        """Current number of data elements in the sample."""
        return self._histogram.size

    def _check_open(self) -> None:
        if self._finalized:
            raise ProtocolError("sampler already finalized")

    def _draw_gap(self) -> int:
        if self._rate >= 1.0:
            return 0
        return self._rng.geometric(self._rate)

    def _first_purge(self) -> None:
        """Exhaustive -> Bernoulli transition, same rate choice as HB."""
        self._rate = rate_for_bound(self._population, self._p, self._bound,
                                    method=self._rate_method)
        self._histogram = purge_bernoulli(self._histogram, self._rate,
                                          self._rng)
        self._exhaustive = False
        self._purges += 1
        self._until_next = self._draw_gap()
        self._shrink_until_bounded()

    def _shrink_until_bounded(self) -> None:
        """Repeat purges until the sample is strictly under the bound."""
        while self._histogram.size >= self._bound:
            new_rate = self._rate * self._decay
            self._histogram = purge_bernoulli(
                self._histogram, new_rate / self._rate, self._rng)
            self._rate = new_rate
            self._purges += 1
            self._until_next = self._draw_gap()

    def feed(self, value: T) -> None:
        """Observe one arriving data element."""
        self._check_open()
        self._seen += 1
        if self._exhaustive:
            self._histogram.insert(value)
            if self._histogram.footprint(self._model) >= self._bound_bytes:
                self._first_purge()
            return
        if self._until_next == 0:
            self._histogram.insert(value)
            self._until_next = self._draw_gap()
            self._shrink_until_bounded()
        else:
            self._until_next -= 1

    def feed_many(self, values: Iterable[T]) -> None:
        """Observe a batch of values."""
        for v in values:
            self.feed(v)

    def finalize(self) -> WarehouseSample:
        """Close the sampler and return the (conditional) Bernoulli sample."""
        self._check_open()
        if self._seen > self._population:
            raise ProtocolError(
                f"saw {self._seen} elements but population was declared as "
                f"{self._population}")
        self._finalized = True
        if self._exhaustive:
            return WarehouseSample(
                histogram=self._histogram,
                kind=SampleKind.EXHAUSTIVE,
                population_size=self._seen,
                bound_values=self._bound,
                scheme="hb-mp",
                exceedance_p=self._p,
                model=self._model,
            )
        return WarehouseSample(
            histogram=self._histogram,
            kind=SampleKind.BERNOULLI,
            population_size=self._seen,
            bound_values=self._bound,
            rate=self._rate,
            scheme="hb-mp",
            exceedance_p=self._p,
            model=self._model,
        )

"""Concise sampling (Gibbons & Matias, SIGMOD'98) — Section 3.3 baseline.

Concise sampling keeps the sample in compact ``(value, count)`` form with
a hard footprint bound ``F``: incoming elements are admitted by a
Bernoulli mechanism whose rate is *decreased on demand* — whenever an
insertion pushes the footprint past ``F``, the rate drops from ``q`` to
``q' < q`` and every sampled element survives an independent coin flip
with probability ``q'/q`` ("purge"), repeating until the footprint fits.

The paper's key observation (Section 3.3) is that this scheme is **not
uniform**: admission survives *for free* when the arriving value is
already in the sample (the footprint does not grow), so samples with few
distinct values are systematically favoured and rare values end up
underrepresented.  The worked example — population ``a,a,a,b,b,b`` with
room for a single ``(value, count)`` pair, where the histogram
``{(a,2), b}`` can never be produced while ``{(a,3)}`` and ``{(b,3)}``
can — is reproduced in ``tests/test_concise.py`` and the Section 3.3
benchmark.

This implementation is a faithful baseline for comparison, not a
recommended sampler; use :class:`~repro.core.hybrid_bernoulli.AlgorithmHB`
or :class:`~repro.core.hybrid_reservoir.AlgorithmHR` for uniform samples.
"""

from __future__ import annotations

from typing import Iterable, Optional, TypeVar

from repro.core.footprint import DEFAULT_MODEL, FootprintModel
from repro.core.histogram import CompactHistogram
from repro.errors import ConfigurationError, ProtocolError
from repro.rng import SplittableRng

__all__ = ["ConciseSampler"]

T = TypeVar("T")

#: Gibbons & Matias raise the threshold by 10% per purge; the admission
#: rate correspondingly decays by 1/1.1 per purge round.
DEFAULT_RATE_DECAY = 1.0 / 1.1


class ConciseSampler:
    """Bounded-footprint concise sampler (non-uniform; baseline only).

    Parameters
    ----------
    footprint_bytes:
        The byte budget ``F`` for the compact sample.
    rng:
        Randomness source.
    rate_decay:
        Multiplicative factor applied to the admission rate at each purge
        round (must lie in ``(0, 1)``).
    model:
        Storage-cost model.

    Examples
    --------
    >>> from repro.rng import SplittableRng
    >>> cs = ConciseSampler(footprint_bytes=96, rng=SplittableRng(9))
    >>> cs.feed_many(range(1000))
    >>> cs.footprint_bytes <= 96
    True
    """

    def __init__(self, footprint_bytes: int, *,
                 rng: Optional[SplittableRng] = None,
                 rate_decay: float = DEFAULT_RATE_DECAY,
                 model: FootprintModel = DEFAULT_MODEL) -> None:
        if footprint_bytes < model.value_bytes:
            raise ConfigurationError(
                f"footprint of {footprint_bytes} bytes cannot hold a single "
                f"{model.value_bytes}-byte value")
        if not 0.0 < rate_decay < 1.0:
            raise ConfigurationError(
                f"rate_decay must be in (0, 1), got {rate_decay}")
        self._bound_bytes = footprint_bytes
        self._rng = rng if rng is not None else SplittableRng()
        self._decay = rate_decay
        self._model = model
        self._histogram = CompactHistogram()
        self._rate = 1.0
        self._seen = 0
        self._purge_rounds = 0
        self._finalized = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def rate(self) -> float:
        """Current admission rate ``q`` (monotonically non-increasing)."""
        return self._rate

    @property
    def seen(self) -> int:
        """Number of elements observed."""
        return self._seen

    @property
    def sample_size(self) -> int:
        """Number of data elements currently in the sample."""
        return self._histogram.size

    @property
    def footprint_bytes(self) -> int:
        """Current compact footprint."""
        return self._histogram.footprint(self._model)

    @property
    def purge_rounds(self) -> int:
        """How many purge rounds have run (diagnostic)."""
        return self._purge_rounds

    @property
    def histogram(self) -> CompactHistogram:
        """The current sample (live view; do not mutate)."""
        return self._histogram

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def feed(self, value: T) -> None:
        """Observe one arriving data element."""
        if self._finalized:
            raise ProtocolError("sampler already finalized")
        self._seen += 1
        if not self._rng.bernoulli(self._rate):
            return
        self._histogram.insert(value)
        while self._histogram.footprint(self._model) > self._bound_bytes:
            self._purge()

    def feed_many(self, values: Iterable[T]) -> None:
        """Observe a batch of values."""
        for v in values:
            self.feed(v)

    def _purge(self) -> None:
        """One purge round: decay the rate, coin-flip every element.

        By luck of the draw a round may not shrink the footprint; the
        caller loops until it does (exactly the paper's description).
        """
        keep = self._decay  # = q' / q
        self._rate *= self._decay
        self._purge_rounds += 1
        survivors = CompactHistogram()
        for value, count in self._histogram.pairs():
            kept = self._rng.binomial(count, keep)
            if kept:
                survivors.insert_count(value, kept)
        self._histogram = survivors

    def finalize(self) -> CompactHistogram:
        """Close the sampler and return the compact sample.

        The result is deliberately *not* a
        :class:`~repro.core.sample.WarehouseSample`: concise samples are
        not uniform and must not flow into the merge machinery.
        """
        if self._finalized:
            raise ProtocolError("sampler already finalized")
        self._finalized = True
        return self._histogram

"""Purge operations on compact samples (Figures 3 and 4).

* :func:`purge_bernoulli` — take a ``Bern(q)`` subsample of a compact
  histogram by drawing a Binomial(count, q) for each ``(value, count)``
  pair (Figure 3).  Cost is O(#distinct values), independent of the number
  of data elements — the point of the compact representation.
* :func:`purge_reservoir` — take a simple random subsample of a given size
  from the bag a compact histogram represents, *without expanding it*
  (Figure 4).

Both inner loops dispatch through :mod:`repro.kernels`: the numpy
backend draws every run's kept count in a single vectorized generator
call, the pure-Python backend runs the paper's loops verbatim
(skip-based reservoir sampling with Fenwick-tree victim selection on
the reservoir side).  Result assembly is shared and backend-agnostic —
surviving ``(value, count)`` pairs are rebuilt through the trusted
:meth:`~repro.core.histogram.CompactHistogram.from_unique_counts`
constructor, so a purge does no per-element Python work beyond the
python-backend draws themselves.

Both functions return new histograms and leave their input untouched —
mutation-free purges make the merge functions easier to reason about (the
paper's pseudocode purges in place).
"""

from __future__ import annotations

from itertools import compress
from typing import List, Sequence

from repro.core.histogram import CompactHistogram
from repro.errors import ConfigurationError
from repro.kernels import binomial_counts, srs_counts
from repro.kernels.python import FenwickTree  # re-exported for back-compat
from repro.rng import SplittableRng

__all__ = ["purge_bernoulli", "purge_reservoir", "purge_reservoir_concat",
           "FenwickTree"]


def _histogram_from_kept(values: Sequence, kept: List[int]
                         ) -> CompactHistogram:
    """Assemble the surviving pairs of a purge (values are distinct)."""
    flags = [n > 0 for n in kept]
    return CompactHistogram.from_unique_counts(
        list(compress(values, flags)), list(compress(kept, flags)))


def purge_bernoulli(histogram: CompactHistogram, q: float,
                    rng: SplittableRng) -> CompactHistogram:
    """Figure 3: a ``Bern(q)`` subsample of a compact sample.

    Each pair ``(v, n)`` becomes ``(v, Binomial(n, q))``; zero-count values
    are dropped.  Returns a new histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"rate must be in [0, 1], got {q}")
    if q == 0.0:
        return CompactHistogram()
    if q == 1.0:
        return histogram.copy()
    kept = binomial_counts(histogram.count_list(), q, rng)
    return _histogram_from_kept(histogram.value_list(), kept)


def _purge_reservoir_entries(entries: List[tuple], size: int,
                             rng: SplittableRng) -> CompactHistogram:
    """Figure 4's loop over explicit ``(value, run)`` entries.

    The same value may appear in several entries (when purging a
    concatenation of histograms); the final re-insertion coalesces them.
    """
    kept = srs_counts([run for _value, run in entries], size, rng)
    result = CompactHistogram()
    for (value, _run), n in zip(entries, kept):
        if n > 0:
            result.insert_count(value, n)
    return result


def purge_reservoir(histogram: CompactHistogram, size: int,
                    rng: SplittableRng) -> CompactHistogram:
    """Figure 4: a simple random subsample of ``size`` elements.

    Subsamples the bag ``expand(histogram)`` without materializing it —
    one :func:`repro.kernels.srs_counts` call over the value runs.

    ``size >= histogram.size`` returns a copy (nothing to purge);
    ``size == 0`` returns an empty histogram.
    """
    if size < 0:
        raise ConfigurationError(f"size must be >= 0, got {size}")
    if size == 0:
        return CompactHistogram()
    if size >= histogram.size:
        return histogram.copy()
    kept = srs_counts(histogram.count_list(), size, rng)
    return _histogram_from_kept(histogram.value_list(), kept)


def purge_reservoir_concat(first: CompactHistogram,
                           second: CompactHistogram, size: int,
                           rng: SplittableRng) -> CompactHistogram:
    """Figure 6, lines 15-16: reservoir-subsample a concatenation.

    Statistically equivalent to ``purge_reservoir`` applied to the bag
    ``expand(first) ++ expand(second)``, but — like the paper's streaming
    formulation — never expands either operand and coalesces duplicate
    values across the two inputs in the compact result.
    """
    if size < 0:
        raise ConfigurationError(f"size must be >= 0, got {size}")
    if size == 0:
        return CompactHistogram()
    total = first.size + second.size
    if size >= total:
        return first.join(second)
    entries = list(first.pairs()) + list(second.pairs())
    return _purge_reservoir_entries(entries, size, rng)

"""Purge operations on compact samples (Figures 3 and 4).

* :func:`purge_bernoulli` — take a ``Bern(q)`` subsample of a compact
  histogram by drawing a Binomial(count, q) for each ``(value, count)``
  pair (Figure 3).  Cost is O(#distinct values), independent of the number
  of data elements — the point of the compact representation.
* :func:`purge_reservoir` — take a simple random subsample of a given size
  from the bag a compact histogram represents, *without expanding it*
  (Figure 4).  Uses skip-based reservoir sampling over the implicit
  concatenation of value runs; victim selection among the already-included
  elements uses a Fenwick (binary-indexed) tree so each eviction costs
  O(log #distinct) instead of the O(#distinct) linear scan in the paper's
  pseudocode.

Both functions return new histograms and leave their input untouched —
mutation-free purges make the merge functions easier to reason about (the
paper's pseudocode purges in place).
"""

from __future__ import annotations

from typing import List

from repro.core.histogram import CompactHistogram
from repro.errors import ConfigurationError
from repro.rng import SplittableRng
from repro.sampling.skip import SkipGenerator

__all__ = ["purge_bernoulli", "purge_reservoir", "purge_reservoir_concat",
           "FenwickTree"]


class FenwickTree:
    """Binary-indexed tree over non-negative integer counts.

    Supports point updates and *prefix-sum search* (find the first index
    whose cumulative count reaches a target) in O(log n) — exactly the
    operation Figure 4's victim-selection step needs (its line 9 computes
    the same thing by linear scan).
    """

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ConfigurationError(f"size must be >= 0, got {size}")
        self._size = size
        self._tree = [0] * (size + 1)
        self._total = 0

    @property
    def total(self) -> int:
        """Sum of all counts."""
        return self._total

    def add(self, index: int, delta: int) -> None:
        """Add ``delta`` to the count at ``index`` (0-based)."""
        if not 0 <= index < self._size:
            raise ConfigurationError(
                f"index {index} out of range [0, {self._size})")
        self._total += delta
        i = index + 1
        while i <= self._size:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of counts at positions ``0..index`` inclusive."""
        total = 0
        i = min(index + 1, self._size)
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total

    def find_by_rank(self, rank: int) -> int:
        """Smallest index whose prefix sum is >= ``rank`` (1-based rank).

        This selects the ``rank``-th data element when counts are run
        lengths: if counts are ``[3, 0, 2]`` then ranks 1..3 map to index
        0 and ranks 4..5 to index 2.
        """
        if not 1 <= rank <= self._total:
            raise ConfigurationError(
                f"rank {rank} out of range [1, {self._total}]")
        index = 0
        remaining = rank
        bit = 1
        while bit * 2 <= self._size:
            bit *= 2
        while bit:
            nxt = index + bit
            if nxt <= self._size and self._tree[nxt] < remaining:
                index = nxt
                remaining -= self._tree[nxt]
            bit //= 2
        return index  # 0-based position

    def counts(self) -> List[int]:
        """Materialize the per-index counts (O(n log n); for finalization)."""
        out = []
        prev = 0
        for i in range(self._size):
            cur = self.prefix_sum(i)
            out.append(cur - prev)
            prev = cur
        return out


def purge_bernoulli(histogram: CompactHistogram, q: float,
                    rng: SplittableRng) -> CompactHistogram:
    """Figure 3: a ``Bern(q)`` subsample of a compact sample.

    Each pair ``(v, n)`` becomes ``(v, Binomial(n, q))``; zero-count values
    are dropped.  Returns a new histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"rate must be in [0, 1], got {q}")
    result = CompactHistogram()
    if q == 0.0:
        return result
    if q == 1.0:
        return histogram.copy()
    for value, n in histogram.pairs():
        kept = rng.binomial(n, q)
        if kept > 0:
            result.insert_count(value, kept)
    return result


def _purge_reservoir_entries(entries: List[tuple], size: int,
                             rng: SplittableRng) -> CompactHistogram:
    """Figure 4's core loop over explicit ``(value, run)`` entries.

    The same value may appear in several entries (when purging a
    concatenation of histograms); the final re-insertion coalesces them.
    """
    tree = FenwickTree(len(entries))
    skips = SkipGenerator(size, rng)

    included = 0          # L in Figure 4
    boundary = 0          # b: upper element index of the current bucket
    processed = 0         # elements of the implicit stream processed
    next_insert = 1       # j: 1-based index of the next element to include
    for position, (_value, run) in enumerate(entries):
        boundary += run
        while next_insert <= boundary:
            if included == size:
                victim_rank = rng.randrange(size) + 1
                victim = tree.find_by_rank(victim_rank)
                tree.add(victim, -1)
                included -= 1
            tree.add(position, 1)
            included += 1
            processed = next_insert
            next_insert = processed + skips.next_skip(processed)

    result = CompactHistogram()
    for (value, _run), kept in zip(entries, tree.counts()):
        if kept > 0:
            result.insert_count(value, kept)
    return result


def purge_reservoir(histogram: CompactHistogram, size: int,
                    rng: SplittableRng) -> CompactHistogram:
    """Figure 4: a simple random subsample of ``size`` elements.

    Performs reservoir sampling of the bag ``expand(histogram)`` without
    materializing it: value runs form "buckets" ``(b_prev, b]`` on the
    implicit element axis; skips land inside buckets to include elements,
    and a Fenwick tree over the output counts picks eviction victims.

    ``size >= histogram.size`` returns a copy (nothing to purge);
    ``size == 0`` returns an empty histogram.
    """
    if size < 0:
        raise ConfigurationError(f"size must be >= 0, got {size}")
    if size == 0:
        return CompactHistogram()
    if size >= histogram.size:
        return histogram.copy()
    return _purge_reservoir_entries(list(histogram.pairs()), size, rng)


def purge_reservoir_concat(first: CompactHistogram,
                           second: CompactHistogram, size: int,
                           rng: SplittableRng) -> CompactHistogram:
    """Figure 6, lines 15-16: reservoir-subsample a concatenation.

    Statistically equivalent to ``purge_reservoir`` applied to the bag
    ``expand(first) ++ expand(second)``, but — like the paper's streaming
    formulation — never expands either operand and coalesces duplicate
    values across the two inputs in the compact result.
    """
    if size < 0:
        raise ConfigurationError(f"size must be >= 0, got {size}")
    if size == 0:
        return CompactHistogram()
    total = first.size + second.size
    if size >= total:
        return first.join(second)
    entries = list(first.pairs()) + list(second.pairs())
    return _purge_reservoir_entries(entries, size, rng)

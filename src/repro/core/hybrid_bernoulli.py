"""Algorithm HB — hybrid Bernoulli sampling (Figure 2).

The sampler moves through up to three phases:

1. **Exhaustive** — every arriving value is inserted into a compact
   ``(value, count)`` histogram.  If the whole partition fits in the
   footprint budget ``F``, the "sample" is an exact histogram of the data.
2. **Bernoulli** — when the histogram's footprint reaches ``F``, a
   ``Bern(q)`` subsample is taken (Figure 3) with ``q`` chosen from
   eq. (1) so that, for the *known* partition size ``N``, the sample size
   stays below ``n_F`` with probability ``1 - p``.  Subsequent arrivals
   are sampled at rate ``q`` using geometric skips.
3. **Reservoir** — in the unlikely event the sample still hits ``n_F``
   (probability ~``p``), the sampler degrades gracefully to reservoir
   sampling with capacity ``n_F`` (Figure 4 for the transition subsample,
   then standard skip-based reservoir steps).

The final sample is uniform in every case; in the usual phase-2 case it
can be treated as a Bernoulli sample, which makes merging cheap
(:func:`repro.core.merge.hb_merge`).

Two fine-print approximations, both of total-variation order ``p`` (the
paper states the first; our reproduction surfaced the second —
see ``tests/test_merge.py::TestHbMergeStatistics``):

* the phase-2 output is Bern(q) *truncated* at ``|S| = n_F``
  ("not quite a true Bernoulli sample"), so merging it as Bernoulli is
  exact only up to the truncation probability ≈ ``p``;
* the phase-2 → phase-3 fallback enters reservoir mode with the first
  ``n_F`` *inclusions* of the Bernoulli process as its reservoir, which
  is not an exact size-``n_F`` SRS of the prefix (the inclusion that
  triggered the switch is always present); the paper's "terminates in
  phase 3 ⇒ clearly uniform" is exact only for the phase-1 → 3 path.

At the paper's operating point (``p ≤ 0.001``, ``n_F`` in the
thousands) both effects are statistically invisible; they matter only
for toy configurations where ``P(|S| ≥ n_F)`` is non-negligible.

Unlike concise sampling — which this construction otherwise resembles —
the selection never depends on *values*, only on arrival order and coin
flips, which is precisely why uniformity holds (Section 3.3 shows concise
sampling's value-dependence breaks uniformity).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, TypeVar

from repro.core.footprint import DEFAULT_MODEL, FootprintModel
from repro.core.histogram import CompactHistogram
from repro.core.phases import SampleKind
from repro.core.purge import purge_bernoulli, purge_reservoir
from repro.core.runs import RepeatedValue
from repro.core.sample import WarehouseSample
from repro.errors import ConfigurationError, ProtocolError
from repro.obs.runtime import OBS
from repro.obs.tracing import span
from repro.rng import SplittableRng
from repro.sampling.exceedance import rate_for_bound
from repro.sampling.skip import SkipGenerator

__all__ = ["AlgorithmHB"]

T = TypeVar("T")


class AlgorithmHB:
    """Streaming hybrid Bernoulli sampler with an a-priori footprint bound.

    Parameters
    ----------
    population_size:
        The partition size ``N``, which must be known a priori (the paper's
        stated requirement for Algorithm HB; use :class:`AlgorithmHR` when
        it is not).
    bound_values:
        The sample-size bound ``n_F`` (number of data-element values).
        Alternatively give ``footprint_bytes`` and let the model derive it.
    footprint_bytes:
        The byte budget ``F``; exactly one of this and ``bound_values``
        must be provided.
    exceedance_p:
        Maximum probability ``p`` that a phase-2 sample would exceed
        ``n_F`` (default 0.001, the paper's default).
    rng:
        Randomness source; defaults to a fresh :class:`SplittableRng`.
    model:
        Storage-cost model for footprint accounting.
    rate_method:
        How to solve for ``q``: ``"approx"`` (eq. (1)), ``"exact"``, or
        ``"auto"`` (default).

    Examples
    --------
    >>> from repro.rng import SplittableRng
    >>> hb = AlgorithmHB(10_000, bound_values=64, rng=SplittableRng(1))
    >>> hb.feed_many(range(10_000))
    >>> s = hb.finalize()
    >>> s.kind.name in ("BERNOULLI", "RESERVOIR")
    True
    >>> s.size <= 64
    True
    """

    def __init__(self, population_size: int,
                 bound_values: Optional[int] = None, *,
                 footprint_bytes: Optional[int] = None,
                 exceedance_p: float = 0.001,
                 rng: Optional[SplittableRng] = None,
                 model: FootprintModel = DEFAULT_MODEL,
                 rate_method: str = "auto") -> None:
        if population_size <= 0:
            raise ConfigurationError(
                f"population_size must be positive, got {population_size}")
        if (bound_values is None) == (footprint_bytes is None):
            raise ConfigurationError(
                "provide exactly one of bound_values and footprint_bytes")
        if bound_values is None:
            assert footprint_bytes is not None
            bound_values = model.bound_values(footprint_bytes)
        if bound_values <= 0:
            raise ConfigurationError(
                f"bound_values must be positive, got {bound_values}")
        if not 0.0 < exceedance_p < 1.0:
            raise ConfigurationError(
                f"exceedance_p must be in (0, 1), got {exceedance_p}")

        self._population = population_size
        self._bound = bound_values
        self._bound_bytes = model.footprint_for_values(bound_values)
        self._p = exceedance_p
        self._rng = rng if rng is not None else SplittableRng()
        self._model = model
        self._rate_method = rate_method

        self._phase = SampleKind.EXHAUSTIVE
        self._histogram: Optional[CompactHistogram] = CompactHistogram()
        self._pending: Optional[CompactHistogram] = None  # compact S'
        self._bag: Optional[List[object]] = None          # expanded S
        self._rate: Optional[float] = None                # q
        self._seen = 0                                    # i
        self._until_next = 0        # phase-2 gap: arrivals until inclusion
        self._skips: Optional[SkipGenerator] = None       # phase 3
        self._next_insert = 0                             # phase-3 n
        self._capacity = bound_values                     # phase-3 size
        self._finalized = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def phase(self) -> SampleKind:
        """The sampler's current phase."""
        return self._phase

    @property
    def seen(self) -> int:
        """Number of elements observed so far."""
        return self._seen

    @property
    def population_size(self) -> int:
        """The declared partition size ``N``."""
        return self._population

    @property
    def bound_values(self) -> int:
        """The sample-size bound ``n_F``."""
        return self._bound

    @property
    def rate(self) -> Optional[float]:
        """The phase-2 Bernoulli rate ``q`` (None while in phase 1)."""
        return self._rate

    @property
    def sample_size(self) -> int:
        """Current number of data elements in the sample."""
        if self._bag is not None:
            return len(self._bag)
        if self._pending is not None:
            return self._pending.size
        assert self._histogram is not None
        return self._histogram.size

    # ------------------------------------------------------------------
    # Resume (used by the merge procedures' exhaustive case)
    # ------------------------------------------------------------------
    @classmethod
    def resume(cls, sample: WarehouseSample, total_population: int, *,
               rng: SplittableRng,
               rate_method: str = "auto") -> "AlgorithmHB":
        """Continue Algorithm HB from a finished sample.

        HBMerge's exhaustive case (Figure 6, lines 1-4) initializes the
        running sample to one input and streams the other input's values
        through the algorithm.  ``total_population`` is the size of the
        *union* the continued sampler will have seen once feeding is done;
        it determines the rate ``q`` if a phase-1 -> phase-2 transition
        happens during the continuation.
        """
        if total_population < sample.population_size:
            raise ConfigurationError(
                "total_population cannot be smaller than the resumed "
                "sample's population")
        sampler = cls(total_population, sample.bound_values,
                      exceedance_p=sample.exceedance_p, rng=rng,
                      model=sample.model, rate_method=rate_method)
        sampler._seen = sample.population_size
        sampler._phase = sample.kind
        if sample.kind is SampleKind.EXHAUSTIVE:
            sampler._histogram = sample.histogram.copy()
        elif sample.kind is SampleKind.BERNOULLI:
            sampler._histogram = None
            sampler._pending = sample.histogram.copy()
            sampler._rate = sample.rate
            sampler._until_next = sampler._draw_gap()
        else:  # RESERVOIR
            sampler._histogram = None
            sampler._pending = sample.histogram.copy()
            sampler._capacity = sample.size
            sampler._skips = SkipGenerator(sampler._capacity, rng)
            sampler._next_insert = (sampler._seen
                                    + sampler._skips.next_skip(sampler._seen))
        return sampler

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._finalized:
            raise ProtocolError("sampler already finalized")

    def _draw_gap(self) -> int:
        """Arrivals to pass over before the next phase-2 inclusion."""
        assert self._rate is not None
        if self._rate >= 1.0:
            return 0
        return self._rng.geometric(self._rate)

    def _enter_phase2_or_3(self) -> None:
        """Phase-1 exit: lines 3-11 of Figure 2."""
        assert self._histogram is not None
        with span("hb.phase2", seen=self._seen):
            self._rate = rate_for_bound(self._population, self._p,
                                        self._bound,
                                        method=self._rate_method)
            subsample = purge_bernoulli(self._histogram, self._rate,
                                        self._rng)
            self._histogram = None
            if OBS.enabled:
                OBS.registry.counter("hb.phase2.enter").inc()
                OBS.registry.gauge("hb.rate.q").set(self._rate)
            if subsample.size < self._bound:
                self._phase = SampleKind.BERNOULLI
                self._pending = subsample
                self._until_next = self._draw_gap()
            else:
                self._pending = purge_reservoir(subsample, self._bound,
                                                self._rng)
                self._enter_phase3()

    def _enter_phase3(self) -> None:
        """Switch to reservoir mode (lines 9-10 / 18-19 of Figure 2)."""
        with span("hb.phase3", seen=self._seen):
            self._phase = SampleKind.RESERVOIR
            self._capacity = self._bound
            self._skips = SkipGenerator(self._capacity, self._rng)
            self._next_insert = self._seen + self._skips.next_skip(self._seen)
        if OBS.enabled:
            OBS.registry.counter("hb.phase3.enter").inc()

    def _expand_pending(self) -> None:
        """Figure 2's expand(S'): leave compact form, once, lazily."""
        assert self._pending is not None
        self._bag = self._pending.expand()
        self._pending = None

    def feed(self, value: T) -> None:
        """Observe one arriving data element (Figure 2's per-arrival body)."""
        self._check_open()
        self._seen += 1
        if self._phase is SampleKind.EXHAUSTIVE:
            assert self._histogram is not None
            self._histogram.insert(value)
            if self._histogram.footprint(self._model) >= self._bound_bytes:
                self._enter_phase2_or_3()
            return
        if self._phase is SampleKind.BERNOULLI:
            if self._until_next == 0:
                if self._bag is None:
                    self._expand_pending()
                self._bag.append(value)
                self._until_next = self._draw_gap()
                if len(self._bag) >= self._bound:
                    self._enter_phase3()
            else:
                self._until_next -= 1
            return
        # Phase 3: reservoir step.
        if self._seen == self._next_insert:
            if self._bag is None:
                self._expand_pending()
            victim = self._rng.randrange(self._capacity)
            self._bag[victim] = value
            assert self._skips is not None
            self._next_insert = (self._seen
                                 + self._skips.next_skip(self._seen))

    def feed_many(self, values: Iterable[T]) -> None:
        """Observe a batch of values.

        Indexable sequences get skip-based fast paths in phases 2 and 3
        (jumping straight between inclusions); general iterables fall back
        to per-element :meth:`feed`.
        """
        self._check_open()
        if isinstance(values, (list, tuple, range)):
            self._feed_sequence(values)
        else:
            for v in values:
                self.feed(v)

    def feed_run(self, value: T, count: int) -> None:
        """Observe ``count`` consecutive occurrences of one value.

        This is how the merge procedures stream a compact sample into a
        running sampler without expanding it: cost is O(#inclusions), not
        O(count), once the run's footprint contribution has stabilized.
        """
        self._check_open()
        while count > 0 and self._phase is SampleKind.EXHAUSTIVE:
            self.feed(value)
            count -= 1
            if (self._phase is SampleKind.EXHAUSTIVE and count > 0
                    and self._histogram is not None
                    and self._histogram.count(value) >= 2):
                # Further occurrences of an existing pair cannot change the
                # footprint, so no phase switch can trigger mid-run.
                self._histogram.insert_count(value, count)
                self._seen += count
                count = 0
        if count > 0:
            self._feed_sequence(RepeatedValue(value, count))

    def _feed_sequence(self, values: Sequence[T]) -> None:
        offset = 0
        n = len(values)
        while offset < n:
            if self._phase is SampleKind.EXHAUSTIVE:
                offset = self._feed_seq_phase1(values, offset)
            elif self._phase is SampleKind.BERNOULLI:
                offset = self._feed_seq_phase2(values, offset)
            else:
                offset = self._feed_seq_phase3(values, offset)

    def _feed_seq_phase1(self, values: Sequence[T], offset: int) -> int:
        hist = self._histogram
        assert hist is not None
        insert = hist.insert
        footprint = hist.footprint
        model, bound_bytes = self._model, self._bound_bytes
        for pos in range(offset, len(values)):
            insert(values[pos])
            self._seen += 1
            if footprint(model) >= bound_bytes:
                self._enter_phase2_or_3()
                return pos + 1
        return len(values)

    def _feed_seq_phase2(self, values: Sequence[T], offset: int) -> int:
        n = len(values)
        pos = offset + self._until_next
        while pos < n:
            if self._bag is None:
                self._expand_pending()
            self._bag.append(values[pos])
            if len(self._bag) >= self._bound:
                self._seen += pos - offset + 1
                self._until_next = self._draw_gap()
                self._enter_phase3()
                return pos + 1
            pos += 1 + self._draw_gap()
        self._until_next = pos - n
        self._seen += n - offset
        return n

    def _feed_seq_phase3(self, values: Sequence[T], offset: int) -> int:
        n = len(values)
        base = self._seen - offset  # stream index of values[0] minus one
        assert self._skips is not None
        while self._next_insert - base <= n:
            if self._bag is None:
                self._expand_pending()
            victim = self._rng.randrange(self._capacity)
            self._bag[victim] = values[self._next_insert - base - 1]
            self._seen = self._next_insert
            self._next_insert = (self._seen
                                 + self._skips.next_skip(self._seen))
        self._seen = base + n
        return n

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finalize(self) -> WarehouseSample:
        """Close the sampler and return the finished sample.

        Converts the sample back to compact histogram form (the inverse of
        ``expand``) and tags it with the final phase.  Fewer arrivals than
        the declared ``N`` are allowed (the sample is merely smaller than
        intended — Section 4.3); *more* arrivals than declared raise
        :class:`~repro.errors.ProtocolError`, since the rate ``q`` computed
        from ``N`` would no longer bound the sample size.
        """
        self._check_open()
        if self._seen > self._population:
            raise ProtocolError(
                f"saw {self._seen} elements but population was declared as "
                f"{self._population}")
        self._finalized = True
        if self._phase is SampleKind.EXHAUSTIVE:
            assert self._histogram is not None
            histogram = self._histogram
        elif self._bag is not None:
            histogram = CompactHistogram.from_values(self._bag)
        else:
            assert self._pending is not None
            histogram = self._pending
        if OBS.enabled:
            reg = OBS.registry
            reg.counter("hb.finalize").inc()
            reg.counter("hb.arrivals").add(self._seen)
            reg.histogram("hb.sample_size").observe(histogram.size)
        return WarehouseSample(
            histogram=histogram,
            kind=self._phase,
            population_size=self._seen,
            bound_values=self._bound,
            rate=self._rate if self._phase is SampleKind.BERNOULLI else None,
            scheme="hb",
            exceedance_p=self._p,
            model=self._model,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AlgorithmHB(N={self._population}, nF={self._bound}, "
                f"phase={self._phase.name}, seen={self._seen}, "
                f"size={self.sample_size})")

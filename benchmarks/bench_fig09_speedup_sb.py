"""Figure 9: speedup of Algorithm SB (sample + merge time vs partitions).

Paper: population 2^26 of unique values; total elapsed cost is U-shaped
in the partition count, SB has the best overall performance of the three
algorithms and supports the highest degree of parallelism (its optimum
lies at a higher partition count than HB's or HR's).
"""

from __future__ import annotations

from repro.bench.experiments import SPEEDUP_HEADERS, speedup_experiment
from repro.bench.report import print_table

from conftest import assert_mostly_decreasing


def test_fig09_speedup_sb(benchmark, scale, rng):
    rows = benchmark.pedantic(
        speedup_experiment, rounds=1, iterations=1,
        args=("sb",),
        kwargs=dict(population=scale.speedup_population,
                    partition_counts=scale.speedup_partition_counts,
                    bound_values=scale.bound_values,
                    rng=rng, repeats=scale.repeats))
    print_table(SPEEDUP_HEADERS, rows,
                title=f"Figure 9: Algorithm SB speedup "
                      f"(N = {scale.speedup_population}, unique)")

    sample_times = [r[1] for r in rows]
    merge_times = [r[2] for r in rows]
    totals = [r[3] for r in rows]
    # Parallel sampling time falls as partitions are added ...
    assert_mostly_decreasing(sample_times)
    # ... while merge cost rises ...
    assert merge_times[-1] > merge_times[0], \
        f"merge cost should grow with partitions: {merge_times}"
    # ... so the best total beats the single-partition total (speedup
    # exists) and is interior or right-edge of the U.
    assert min(totals) < totals[0], f"no speedup observed: {totals}"

"""Ablation A3: stratified vs merged estimation (Section 4.1 / 6).

Section 4.1 notes that per-partition samples can be "simply
concatenated, yielding a stratified random sample"; Section 6 lists
stratified designs as future work.  This bench quantifies what the
stratified design buys: when partition means drift (temporal data), the
stratified estimator's confidence interval is much tighter than the
merged uniform sample's, at identical storage cost.
"""

from __future__ import annotations

from repro.analytics.estimators import estimate_avg
from repro.bench.report import print_table
from repro.core.merge import merge_tree
from repro.core.stratified import StratifiedSample
from repro.warehouse.parallel import SampleTask, sample_partition


def _build(rng, *, partitions, per_partition, bound, drift):
    samples = []
    for i in range(partitions):
        base = i * drift
        child = rng.spawn("data", i, drift)
        # High-cardinality values so per-partition samples are genuine
        # reservoir samples, not exhaustive histograms.
        values = [base + child.randrange(100_000)
                  for _ in range(per_partition)]
        samples.append(sample_partition(SampleTask(
            values=values, scheme="hr", bound_values=bound,
            seed=rng.spawn("s", i, drift).seed_value)))
    return samples


def test_ablation_stratified(benchmark, scale, rng):
    partitions = 8
    per_partition = scale.sizes_partition_size
    bound = scale.bound_values // 4

    def run():
        rows = []
        ratios = []
        for drift in (0, 100_000, 1_000_000, 10_000_000):
            samples = _build(rng, partitions=partitions,
                             per_partition=per_partition, bound=bound,
                             drift=drift)
            merged = estimate_avg(merge_tree(
                samples, rng=rng.spawn("m", drift)))
            stratified = StratifiedSample(samples).estimate_avg()
            ratio = merged.half_width / max(stratified.half_width, 1e-12)
            rows.append((drift, merged.half_width,
                         stratified.half_width, ratio))
            ratios.append((drift, ratio))
        return rows, ratios

    rows, ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(("drift", "merged_ci_half", "stratified_ci_half",
                 "shrink_x"), rows,
                title="Ablation A3: merged vs stratified AVG interval "
                      f"({partitions} partitions)")

    by_drift = dict(ratios)
    # No drift: the gap reflects only sample-size bookkeeping — the
    # stratified design reads all 8 per-partition samples (8x the
    # elements) while the merged sample is capped at one bound's worth,
    # giving ~sqrt(8) ~ 2.8x.  Anything in a generous band around that
    # is "comparable".
    assert 0.3 < by_drift[0] < 4.5
    # Strong drift: stratification wins by a wide margin.
    assert by_drift[10_000_000] > 5.0, \
        f"expected a big stratified win under drift, got {by_drift}"
    # The advantage grows with drift.
    assert by_drift[10_000_000] > by_drift[100_000]

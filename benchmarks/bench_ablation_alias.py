"""Ablation A2: inversion vs alias-table generation in HRMerge.

Section 4.2: "In some scenarios, the partition sizes and sample sizes
are unchanging and merges are performed in a symmetric pairwise fashion,
in which case we need to produce many samples from a fixed probability
vector P ... the alias method can be used to increase generation
efficiency."  This bench merges a balanced tree of equal-size reservoir
samples with (a) fresh inversion per merge and (b) a shared alias-table
cache, and compares the wall time.
"""

from __future__ import annotations

from repro.bench import wall_timer
from repro.bench.report import print_table
from repro.core.hybrid_reservoir import AlgorithmHR
from repro.core.merge import hr_merge, merge_tree
from repro.sampling.distributions import CachedHypergeometric
from repro.workloads.generators import UniformGenerator


def _build_samples(rng, *, partitions, partition_size, bound):
    gen = UniformGenerator()
    samples = []
    for i in range(partitions):
        data = gen.generate(partition_size, rng.spawn("data", i))
        hr = AlgorithmHR(bound, rng=rng.spawn("hr", i))
        hr.feed_many(data)
        samples.append(hr.finalize())
    return samples


def _merge_all(samples, rng, cache):
    def merger(a, b):
        return hr_merge(a, b, rng=rng, cache=cache)

    return merge_tree(samples, rng=rng, mode="balanced", merger=merger)


def test_ablation_alias(benchmark, scale, rng):
    partitions = 32
    samples = _build_samples(
        rng, partitions=partitions,
        partition_size=scale.sizes_partition_size,
        bound=scale.bound_values)

    def run_both():
        with wall_timer() as plain_t:
            merged_plain = _merge_all(samples, rng.spawn("plain"), None)
        cache = CachedHypergeometric()
        with wall_timer() as cached_t:
            merged_cached = _merge_all(samples, rng.spawn("cached"), cache)
        return (plain_t.seconds, cached_t.seconds, merged_plain,
                merged_cached, len(cache))

    plain_s, cached_s, merged_plain, merged_cached, cache_entries = \
        benchmark.pedantic(run_both, rounds=1, iterations=1)

    print_table(
        ("strategy", "seconds", "merged_size", "alias_tables"),
        [("inversion per merge", plain_s, merged_plain.size, "-"),
         ("cached alias tables", cached_s, merged_cached.size,
          cache_entries)],
        title=f"Ablation A2: HRMerge L-generation over a balanced tree "
              f"of {partitions} partitions")

    # Correctness is identical either way; sizes are pinned at the bound.
    assert merged_plain.size == merged_cached.size == scale.bound_values
    # The balanced tree over equal partitions reuses one distribution per
    # level: the cache should hold ~log2(partitions) tables.
    assert cache_entries <= partitions.bit_length() + 1

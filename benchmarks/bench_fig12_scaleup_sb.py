"""Figure 12: scaleup of Algorithm SB.

Paper: per-partition size fixed at 32K elements while the scale factor
(= partition count = population multiplier) grows 32..512; the three
distributions (unique / uniform / Zipfian) are charted on a log-seconds
axis.  SB is the fastest of the three algorithms and all scale roughly
linearly.
"""

from __future__ import annotations

from repro.bench.experiments import SCALEUP_HEADERS, scaleup_experiment
from repro.bench.report import print_table

from conftest import assert_mostly_increasing


def _check_roughly_linear(rows, factors):
    """Cost grows with scale but clearly subquadratically."""
    by_dist = {}
    for scale_factor, dist, secs in rows:
        by_dist.setdefault(dist, []).append(secs)
    growth = factors[-1] / factors[0]
    for dist, series in by_dist.items():
        assert_mostly_increasing(series)
        # Linear scaleup: cost ratio stays well under the quadratic
        # growth ratio (growth^2); allow 3x the linear ratio for noise.
        assert series[-1] <= series[0] * growth * 3.0, \
            f"{dist}: superlinear scaleup {series}"


def test_fig12_scaleup_sb(benchmark, scale, rng):
    rows = benchmark.pedantic(
        scaleup_experiment, rounds=1, iterations=1,
        args=("sb",),
        kwargs=dict(partition_size=scale.scaleup_partition_size,
                    scale_factors=scale.scaleup_factors,
                    bound_values=scale.bound_values,
                    rng=rng, repeats=scale.repeats))
    print_table(SCALEUP_HEADERS, rows,
                title=f"Figure 12: Algorithm SB scaleup "
                      f"({scale.scaleup_partition_size} elems/partition)")
    _check_roughly_linear(rows, scale.scaleup_factors)

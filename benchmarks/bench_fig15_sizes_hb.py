"""Figure 15: merged sample sizes for Algorithm HB.

Paper: 32K-element partitions, n_F = 8192, uniform and unique data, p in
{1e-3, 1e-5}.  HB's merged sample sizes are *below* the bound, shrink
and fluctuate as the partition count (and thus the number of Bernoulli
subsampling merges) grows, and are relatively insensitive to p — which
is why p can be chosen very small.  Worst case in the paper: 9.25%
smaller than HR's at 512 partitions.
"""

from __future__ import annotations

from repro.bench.experiments import SIZES_HEADERS, sample_size_experiment
from repro.bench.report import print_table


def test_fig15_sizes_hb(benchmark, scale, rng):
    rows = benchmark.pedantic(
        sample_size_experiment, rounds=1, iterations=1,
        args=("hb",),
        kwargs=dict(partition_size=scale.sizes_partition_size,
                    partition_counts=scale.sizes_partition_counts,
                    bound_values=scale.bound_values,
                    rng=rng,
                    p_values=(0.001, 0.00001),
                    repeats=scale.repeats))
    print_table(SIZES_HEADERS, rows,
                title=f"Figure 15: Algorithm HB merged sample sizes "
                      f"(n_F = {scale.bound_values})")

    bound = scale.bound_values
    for parts, dist, p, mean_size, cv in rows:
        # The footprint bound holds unconditionally, and HB's sizes sit
        # strictly *below* the bound (HR's are pinned exactly at it —
        # the Figure 15 vs 16 contrast).
        assert mean_size < bound, \
            f"{dist}/{parts}p/p={p}: size {mean_size} >= bound {bound}"
    # HB sizes fluctuate between repetitions ("less stable"): at least
    # one multi-partition configuration shows nonzero variation.
    assert any(cv > 0.0 for parts, _d, _p, _m, cv in rows if parts > 1), \
        "HB sizes show no fluctuation at all"
    # Sizes must never *grow* materially as merges stack up.  (Deviation
    # note, recorded in EXPERIMENTS.md: the paper observed sizes decaying
    # with the merge count; our HBMerge recomputes q from the union size,
    # which keeps the mean near N*q(N_total) for every partition count.)
    by_curve = {}
    for parts, dist, p, mean_size, _cv in rows:
        by_curve.setdefault((dist, p), []).append((parts, mean_size))
    for (dist, p), series in by_curve.items():
        series.sort()
        first, last = series[0][1], series[-1][1]
        assert last <= first * 1.05, \
            f"{dist}/p={p}: sizes grew with merges: {series}"
    # Insensitivity to p: at the largest partition count, the two p
    # curves differ by only a few percent (paper's observation).
    largest = max(scale.sizes_partition_counts)
    for dist in ("uniform", "unique"):
        sizes = {p: m for parts, d, p, m, _cv in rows
                 if d == dist and parts == largest}
        hi, lo = max(sizes.values()), min(sizes.values())
        assert (hi - lo) / hi < 0.10, \
            f"{dist}: sample size too sensitive to p: {sizes}"

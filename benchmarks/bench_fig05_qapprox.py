"""Figure 5: relative error of the eq. (1) rate approximation.

Paper: N = 1e5, p in [1e-5, 5e-3], n_F in {1e2, 1e3, 1e4}; the relative
error of the closed-form q against the exact binomial-tail root "never
exceeds 3%, and is typically much lower" (figure annotation:
max = 2.765%).  Our exact solver reproduces that number to four digits.
"""

from __future__ import annotations

from repro.bench.experiments import FIG05_HEADERS, fig05_qapprox
from repro.bench.report import print_table


def _run():
    return fig05_qapprox()


def test_fig05_qapprox(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_table(FIG05_HEADERS, rows,
                title="Figure 5: relative error of eq. (1) (N = 1e5)")

    max_err = max(r[4] for r in rows)
    # Paper: error never exceeds 3% (max = 2.765%).
    assert max_err < 3.0, f"max relative error {max_err}% >= 3%"
    # Error shrinks as the bound n_F grows (the figure's three curves).
    worst_by_bound = {}
    for p, bound, _qe, _qa, err in rows:
        worst_by_bound[bound] = max(worst_by_bound.get(bound, 0.0), err)
    bounds = sorted(worst_by_bound)
    errors = [worst_by_bound[b] for b in bounds]
    assert errors == sorted(errors, reverse=True), \
        f"error should decrease with n_F: {worst_by_bound}"
    # And the overall max matches the paper's annotation closely.
    assert abs(max_err - 2.765) < 0.05, \
        f"paper annotates max = 2.765%, we got {max_err:.3f}%"

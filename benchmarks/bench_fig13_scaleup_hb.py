"""Figure 13: scaleup of Algorithm HB.

Paper: same setup as Figure 12.  HB scales roughly linearly; the Zipfian
workload is the cheapest because its few distinct values keep every
partition sample exhaustive (nothing to purge, trivial merges).
"""

from __future__ import annotations

from repro.bench.experiments import SCALEUP_HEADERS, scaleup_experiment
from repro.bench.report import print_table

from conftest import assert_mostly_increasing


def test_fig13_scaleup_hb(benchmark, scale, rng):
    rows = benchmark.pedantic(
        scaleup_experiment, rounds=1, iterations=1,
        args=("hb",),
        kwargs=dict(partition_size=scale.scaleup_partition_size,
                    scale_factors=scale.scaleup_factors,
                    bound_values=scale.bound_values,
                    rng=rng, repeats=scale.repeats))
    print_table(SCALEUP_HEADERS, rows,
                title=f"Figure 13: Algorithm HB scaleup "
                      f"({scale.scaleup_partition_size} elems/partition)")

    by_dist = {}
    for scale_factor, dist, secs in rows:
        by_dist.setdefault(dist, []).append(secs)
    growth = scale.scaleup_factors[-1] / scale.scaleup_factors[0]
    for dist, series in by_dist.items():
        assert_mostly_increasing(series)
        assert series[-1] <= series[0] * growth * 3.0, \
            f"{dist}: superlinear scaleup {series}"

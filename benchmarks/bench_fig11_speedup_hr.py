"""Figure 11: speedup of Algorithm HR.

Paper: same setup as Figures 9-10; HR is slightly slower than HB (its
hypergeometric merges cost more), with a comparable optimum (32-64
partitions in their prototype).
"""

from __future__ import annotations

from repro.bench.experiments import SPEEDUP_HEADERS, speedup_experiment
from repro.bench.report import print_table

from conftest import assert_mostly_decreasing


def test_fig11_speedup_hr(benchmark, scale, rng):
    rows = benchmark.pedantic(
        speedup_experiment, rounds=1, iterations=1,
        args=("hr",),
        kwargs=dict(population=scale.speedup_population,
                    partition_counts=scale.speedup_partition_counts,
                    bound_values=scale.bound_values,
                    rng=rng, repeats=scale.repeats))
    print_table(SPEEDUP_HEADERS, rows,
                title=f"Figure 11: Algorithm HR speedup "
                      f"(N = {scale.speedup_population}, unique)")

    sample_times = [r[1] for r in rows]
    merge_times = [r[2] for r in rows]
    assert_mostly_decreasing(sample_times)
    assert merge_times[-1] > merge_times[0], \
        f"merge cost should grow with partitions: {merge_times}"
    assert merge_times[-1] > sample_times[-1], \
        "merges should dominate at high partition counts"

"""Shared configuration for the figure-reproduction benchmarks.

Scales
------
Every bench reads ``REPRO_BENCH_SCALE`` from the environment:

* ``small`` (default) — laptop-budget parameters.  The ratios that drive
  the figures' *shapes* are preserved (partition size = 4x the sample
  bound, as in the paper's 32K/8192), only the absolute magnitudes
  shrink.
* ``paper`` — the paper's parameters (2^26-element populations, up to
  1024 partitions, n_F = 8192).  Expect hours of CPU in pure Python.

Each bench prints the series behind its figure as an ASCII table (so a
``pytest benchmarks/ --benchmark-only -s`` run regenerates every figure's
data) and asserts the figure's qualitative shape.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence, Tuple

import pytest

from repro.rng import SplittableRng

MASTER_SEED = 20060403  # ICDE 2006, Atlanta


@dataclass(frozen=True)
class BenchScale:
    """Parameter set for one scale level."""

    name: str
    # Figures 9-11 (speedup): fixed population, varying partition count.
    speedup_population: int
    speedup_partition_counts: Tuple[int, ...]
    # Figures 12-14 (scaleup): fixed per-partition size, varying factor.
    scaleup_partition_size: int
    scaleup_factors: Tuple[int, ...]
    # Figures 15-16 (sizes): fixed per-partition size, varying count.
    sizes_partition_size: int
    sizes_partition_counts: Tuple[int, ...]
    bound_values: int
    repeats: int


SMALL = BenchScale(
    name="small",
    speedup_population=2 ** 18,
    speedup_partition_counts=(1, 2, 4, 8, 16, 32, 64, 128),
    scaleup_partition_size=8 * 1024,
    scaleup_factors=(4, 8, 16, 32, 64),
    sizes_partition_size=8 * 1024,
    sizes_partition_counts=(1, 2, 4, 8, 16, 32, 64),
    bound_values=2 * 1024,   # partition_size / bound = 4, as in the paper
    repeats=2,
)

PAPER = BenchScale(
    name="paper",
    speedup_population=2 ** 26,
    speedup_partition_counts=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
    scaleup_partition_size=32 * 1024,
    scaleup_factors=(32, 64, 128, 256, 512),
    sizes_partition_size=32 * 1024,
    sizes_partition_counts=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
    bound_values=8192,
    repeats=3,
)


def current_scale() -> BenchScale:
    """The BenchScale selected by ``REPRO_BENCH_SCALE``."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small")
    if name == "paper":
        return PAPER
    return SMALL


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    """The active scale level."""
    return current_scale()


@pytest.fixture()
def rng() -> SplittableRng:
    """A fresh master RNG per bench (fixed seed: runs are reproducible)."""
    return SplittableRng(MASTER_SEED)


def assert_mostly_decreasing(xs: Sequence[float], *,
                             tolerance: float = 0.30) -> None:
    """Assert a series trends downward (noise-tolerant).

    The last element must sit below ``(1 + tolerance) *`` the first, and
    the overall minimum must not be the first element's strict neighbor
    only by noise — we simply require last <= first * (1 + tolerance)
    and min(xs) < first.
    """
    assert xs[-1] <= xs[0] * (1.0 + tolerance), \
        f"series does not trend down: {xs}"


def assert_mostly_increasing(xs: Sequence[float], *,
                             tolerance: float = 0.30) -> None:
    """Assert a series trends upward (noise-tolerant)."""
    assert xs[-1] >= xs[0] * (1.0 - tolerance), \
        f"series does not trend up: {xs}"

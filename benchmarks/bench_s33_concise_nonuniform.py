"""Section 3.3: concise sampling is not uniform — the worked example.

Population ``{a,a,a,b,b,b}`` with a concise-sampling structure holding at
most one (value, count) pair.  Under uniformity, the size-3 samples
H1 = {(a,3)}, H2 = {(b,3)}, H3 = {(a,2), b} would either all be possible
(with H3 nine times as likely as H1 or H2) or all impossible.  In fact
H1 and H2 occur with positive probability while H3 can never be produced
(its footprint exceeds the bound) — so concise sampling cannot be
uniform, and values that appear infrequently are underrepresented.
"""

from __future__ import annotations

from repro.bench.experiments import concise_demo
from repro.bench.report import print_table


def test_s33_concise_nonuniform(benchmark, rng):
    counts = benchmark.pedantic(
        concise_demo, rounds=1, iterations=1,
        kwargs=dict(trials=5_000, rng=rng))
    print_table(("histogram", "occurrences"),
                sorted(counts.items()),
                title="Section 3.3: concise-sampling outcome frequencies "
                      "(capacity: one pair)")

    assert counts["H1"] > 0, "H1 = {(a,3)} should occur"
    assert counts["H2"] > 0, "H2 = {(b,3)} should occur"
    assert counts["H3"] == 0, \
        "H3 = {(a,2), b} must never occur - that is the non-uniformity"

"""Micro-benchmarks of the core operations.

Not a paper figure — operational visibility into the primitives the
figure benches compose: histogram insertion, the two purges, skip
generation, and a single HRMerge.  These use pytest-benchmark's standard
multi-round timing (they are fast and deterministic enough for it).
"""

from __future__ import annotations

from repro.core.histogram import CompactHistogram
from repro.core.hybrid_reservoir import AlgorithmHR
from repro.core.merge import hr_merge
from repro.core.purge import purge_bernoulli, purge_reservoir
from repro.rng import SplittableRng
from repro.sampling.skip import SkipGenerator
from repro.workloads.generators import UniformGenerator

N_VALUES = 20_000
BOUND = 2_048


def _histogram(rng) -> CompactHistogram:
    gen = UniformGenerator(value_range=5_000)
    return CompactHistogram.from_values(gen.generate(N_VALUES, rng))


def test_histogram_insert(benchmark, rng):
    values = UniformGenerator(5_000).generate(N_VALUES, rng)

    def build():
        return CompactHistogram.from_values(values)

    hist = benchmark(build)
    assert hist.size == N_VALUES


def test_purge_bernoulli(benchmark, rng):
    hist = _histogram(rng.spawn("h"))
    result = benchmark(purge_bernoulli, hist, 0.1, rng)
    assert 0 < result.size < hist.size


def test_purge_reservoir(benchmark, rng):
    hist = _histogram(rng.spawn("h"))
    result = benchmark(purge_reservoir, hist, BOUND, rng)
    assert result.size == BOUND


def test_skip_generation(benchmark, rng):
    def run():
        gen = SkipGenerator(BOUND, rng)
        t = BOUND
        while t < N_VALUES:
            t += gen.next_skip(t)
        return t

    final = benchmark(run)
    assert final >= N_VALUES


def test_hr_merge_once(benchmark, rng):
    gen = UniformGenerator()
    samples = []
    for i in range(2):
        hr = AlgorithmHR(BOUND, rng=rng.spawn("hr", i))
        hr.feed_many(gen.generate(N_VALUES, rng.spawn("d", i)))
        samples.append(hr.finalize())

    merged = benchmark(hr_merge, samples[0], samples[1], rng=rng)
    assert merged.size == BOUND

"""Figure 10: speedup of Algorithm HB.

Paper: same setup as Figure 9; HB is second-fastest overall, its cost
curve U-shaped with the optimum at a lower partition count than SB's
(their prototype supported 32-64 partitions before merges dominate).
"""

from __future__ import annotations

from repro.bench.experiments import SPEEDUP_HEADERS, speedup_experiment
from repro.bench.report import print_table

from conftest import assert_mostly_decreasing


def test_fig10_speedup_hb(benchmark, scale, rng):
    rows = benchmark.pedantic(
        speedup_experiment, rounds=1, iterations=1,
        args=("hb",),
        kwargs=dict(population=scale.speedup_population,
                    partition_counts=scale.speedup_partition_counts,
                    bound_values=scale.bound_values,
                    rng=rng, repeats=scale.repeats))
    print_table(SPEEDUP_HEADERS, rows,
                title=f"Figure 10: Algorithm HB speedup "
                      f"(N = {scale.speedup_population}, unique)")

    sample_times = [r[1] for r in rows]
    merge_times = [r[2] for r in rows]
    assert_mostly_decreasing(sample_times)
    assert merge_times[-1] > merge_times[0], \
        f"merge cost should grow with partitions: {merge_times}"
    # HB's merge costs overtake sampling well before the largest
    # partition count — the U's right arm.
    assert merge_times[-1] > sample_times[-1], \
        "merges should dominate at high partition counts"

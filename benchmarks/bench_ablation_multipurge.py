"""Ablation A1: Algorithm HB vs the multiple-purge variant (Section 4.1).

The paper dismisses the phase-3-free multiple-purge variant without
measurements: "somewhat more expensive than Algorithm HB on average, and
the final sample sizes would tend to be smaller and less stable.  Thus
the multiple-purge algorithm is dominated by Algorithm HB."  This bench
measures both claims on the uniform workload.
"""

from __future__ import annotations

from repro.bench import wall_timer
from repro.bench.report import print_table
from repro.core.hybrid_bernoulli import AlgorithmHB
from repro.core.multi_purge import MultiPurgeBernoulli
from repro.stats.summaries import coefficient_of_variation, mean
from repro.workloads.generators import UniformGenerator


def _run_variants(rng, *, population, bound, repeats):
    gen = UniformGenerator()
    rows = []
    stats = {}
    for name, factory in (
            ("hb", lambda r: AlgorithmHB(population, bound, rng=r)),
            ("multi-purge", lambda r: MultiPurgeBernoulli(
                population, bound, rng=r))):
        sizes, seconds = [], []
        for rep in range(repeats):
            data = gen.generate(population, rng.spawn("data", name, rep))
            sampler = factory(rng.spawn("samp", name, rep))
            with wall_timer() as t:
                sampler.feed_many(data)
                sample = sampler.finalize()
            seconds.append(t.seconds)
            sizes.append(float(sample.size))
        rows.append((name, mean(seconds), mean(sizes),
                     coefficient_of_variation(sizes)))
        stats[name] = (mean(seconds), mean(sizes),
                       coefficient_of_variation(sizes))
    return rows, stats


def test_ablation_multipurge(benchmark, scale, rng):
    population = scale.sizes_partition_size * 8
    rows, stats = benchmark.pedantic(
        _run_variants, rounds=1, iterations=1,
        args=(rng,),
        kwargs=dict(population=population, bound=scale.bound_values,
                    repeats=max(3, scale.repeats)))
    print_table(("variant", "seconds", "mean_size", "size_cv"), rows,
                title="Ablation A1: HB vs multiple-purge "
                      f"(N = {population}, n_F = {scale.bound_values})")

    _hb_secs, hb_size, _hb_cv = stats["hb"]
    _mp_secs, mp_size, _mp_cv = stats["multi-purge"]
    # Paper's size claim: multiple-purge samples tend to be smaller.
    assert mp_size <= hb_size * 1.02, (
        f"multiple-purge mean size {mp_size} unexpectedly exceeds "
        f"HB's {hb_size}")
    # Both respect the bound.
    assert hb_size <= scale.bound_values
    assert mp_size <= scale.bound_values

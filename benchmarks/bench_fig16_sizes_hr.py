"""Figure 16: merged sample sizes for Algorithm HR.

Paper: same grid as Figure 15 (minus the p parameter, which HR does not
have).  HR's merged sample size is pinned at n_F for every partition
count — each pairwise HRMerge preserves min(|S1|, |S2|) = n_F — which is
the "larger and more stable sample sizes" half of the HB/HR tradeoff.
"""

from __future__ import annotations

from repro.bench.experiments import SIZES_HEADERS, sample_size_experiment
from repro.bench.report import print_table


def test_fig16_sizes_hr(benchmark, scale, rng):
    rows = benchmark.pedantic(
        sample_size_experiment, rounds=1, iterations=1,
        args=("hr",),
        kwargs=dict(partition_size=scale.sizes_partition_size,
                    partition_counts=scale.sizes_partition_counts,
                    bound_values=scale.bound_values,
                    rng=rng,
                    p_values=(0.001,),   # unused by HR; one row set
                    repeats=scale.repeats))
    print_table(SIZES_HEADERS, rows,
                title=f"Figure 16: Algorithm HR merged sample sizes "
                      f"(n_F = {scale.bound_values})")

    bound = scale.bound_values
    for parts, dist, _p, mean_size, cv in rows:
        # Partitions are 4x the bound, so every per-partition sample is a
        # full reservoir and every merge preserves the size: exactly n_F.
        assert mean_size == bound, \
            f"{dist}/{parts}p: HR size {mean_size} != bound {bound}"
        assert cv == 0.0, f"{dist}/{parts}p: HR sizes fluctuate (cv={cv})"

"""Sampling throughput (Section 5's conclusion 2, re-measured).

The paper reports absolute throughput — "Algorithm HB can exploit 64-way
parallelism to sample 4.6 million data elements per second, and
Algorithm HR can exploit 32-way parallelism to sample 3 million" — on
2006 hardware.  This bench measures per-core elements/second for each
scheme in both arrival modes:

* per-arrival ``feed`` (the honest streaming cost every real pipeline
  pays: one call per element);
* batched ``feed_many`` over an in-memory list (the library's skip fast
  path, which touches only included elements).

Numbers are printed, not asserted (they are hardware-bound); the one
shape assertion is that the batched fast path beats per-arrival feeding
for the bounded samplers, which is the point of implementing skips.
"""

from __future__ import annotations

from repro.bench import wall_timer
from repro.bench.report import print_table
from repro.warehouse.parallel import make_sampler
from repro.workloads.generators import UniformGenerator

N = 200_000
BOUND = 2_048


def _throughput(scheme, values, rng, mode):
    sampler = make_sampler(scheme, population_size=len(values),
                           bound_values=BOUND, exceedance_p=0.001,
                           sb_rate=BOUND / len(values), rng=rng)
    with wall_timer() as t:
        if mode == "stream":
            feed = sampler.feed
            for v in values:
                feed(v)
        else:
            sampler.feed_many(values)
    sampler.finalize()
    return len(values) / t.seconds


def test_throughput(benchmark, rng):
    values = UniformGenerator(1_000_000).generate(N, rng.spawn("data"))

    def run():
        rows = []
        rates = {}
        for scheme in ("sb", "hb", "hr"):
            stream = _throughput(scheme, values,
                                 rng.spawn("s", scheme), "stream")
            batch = _throughput(scheme, values,
                                rng.spawn("b", scheme), "batch")
            rows.append((scheme, stream, batch, batch / stream))
            rates[scheme] = (stream, batch)
        return rows, rates

    rows, rates = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(("scheme", "stream_elems_per_s", "batch_elems_per_s",
                 "fast_path_speedup"), rows,
                title=f"Sampling throughput, one core, N = {N:,} "
                      f"(paper conclusion 2 context)")

    # The skip-based fast path must pay off for the bounded samplers.
    for scheme in ("hb", "hr"):
        stream, batch = rates[scheme]
        assert batch > stream, \
            f"{scheme}: fast path ({batch:.0f}/s) did not beat " \
            f"per-arrival feeding ({stream:.0f}/s)"

"""Section 5's summary conclusions, re-measured.

1. The new algorithms are within an order of magnitude of Algorithm SB's
   sampling speed (the price of bounded footprints + compact storage).
2. Absolute throughput is acceptable (reported; hardware-dependent).
3. Both new algorithms achieve linear scaleup (checked by Figures 12-14;
   here we re-check the speed relationship at the optimum).
4. Algorithm HR yields larger and more stable sample sizes than HB, at
   some loss of sampling speed.
"""

from __future__ import annotations

from repro.bench.experiments import conclusions_check
from repro.bench.report import print_table


def test_conclusions(benchmark, scale, rng):
    result = benchmark.pedantic(
        conclusions_check, rounds=1, iterations=1,
        kwargs=dict(population=scale.speedup_population // 4,
                    partition_counts=scale.speedup_partition_counts[:6],
                    partition_size=scale.sizes_partition_size,
                    bound_values=scale.bound_values,
                    rng=rng, repeats=scale.repeats))

    print_table(
        ("metric", "value"),
        [(k, v) for k, v in result.items()
         if not isinstance(v, dict)],
        title="Section 5 conclusions")

    # Conclusion 1: within an order of magnitude of SB.
    assert result["within_order_of_magnitude"], (
        f"hybrid algorithms too slow vs SB: "
        f"hb={result['speed_ratio_hb_over_sb']:.1f}x, "
        f"hr={result['speed_ratio_hr_over_sb']:.1f}x")
    # Conclusion 4: HR sizes larger and more stable.
    assert result["hr_larger_than_hb"], (
        f"HR mean size {result['hr_mean_size']} < "
        f"HB mean size {result['hb_mean_size']}")
    assert result["hr_more_stable_than_hb"], (
        f"HR size cv {result['hr_size_cv']} > HB {result['hb_size_cv']}")
